#include "xml/parser.h"

#include "xml/xml_dom.h"

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "util/strings.h"

namespace pxml {

using xml_internal::ParseChildSet;
using xml_internal::ParseDoubleAttr;
using xml_internal::ParseTypedValue;
using xml_internal::ParseXmlDocument;
using xml_internal::XmlNode;

namespace {

Result<ExplicitOpf> ParseExplicitRows(const Dictionary& dict,
                                      const XmlNode& parent) {
  ExplicitOpf opf;
  for (const XmlNode& row : parent.children) {
    if (row.name != "row") {
      return Status::ParseError(
          StrCat("unexpected <", row.name, "> in explicit OPF"));
    }
    PXML_ASSIGN_OR_RETURN(double p, ParseDoubleAttr(row, "p"));
    PXML_ASSIGN_OR_RETURN(IdSet c, ParseChildSet(dict, row));
    opf.Set(std::move(c), p);
  }
  return opf;
}

Result<std::unique_ptr<Opf>> ParseOpf(const Dictionary& dict,
                                      const XmlNode& node) {
  const std::string* rep = node.Attr("rep");
  std::string representation = rep != nullptr ? *rep : "explicit";
  if (representation == "explicit") {
    PXML_ASSIGN_OR_RETURN(ExplicitOpf opf, ParseExplicitRows(dict, node));
    return std::unique_ptr<Opf>(std::make_unique<ExplicitOpf>(std::move(opf)));
  }
  if (representation == "independent") {
    auto opf = std::make_unique<IndependentOpf>();
    for (const XmlNode& child : node.children) {
      if (child.name != "child") {
        return Status::ParseError(
            StrCat("unexpected <", child.name, "> in independent OPF"));
      }
      PXML_ASSIGN_OR_RETURN(double p, ParseDoubleAttr(child, "p"));
      PXML_ASSIGN_OR_RETURN(IdSet ids, ParseChildSet(dict, child));
      if (ids.size() != 1) {
        return Status::ParseError("<child> must name exactly one object");
      }
      PXML_RETURN_IF_ERROR(opf->AddChild(ids[0], p));
    }
    return std::unique_ptr<Opf>(std::move(opf));
  }
  if (representation == "per-label") {
    auto opf = std::make_unique<PerLabelProductOpf>();
    for (const XmlNode& factor : node.children) {
      if (factor.name != "factor") {
        return Status::ParseError(
            StrCat("unexpected <", factor.name, "> in per-label OPF"));
      }
      const std::string* label = factor.Attr("label");
      if (label == nullptr) {
        return Status::ParseError("<factor> needs a 'label' attribute");
      }
      auto label_id = dict.FindLabel(*label);
      if (!label_id.has_value()) {
        return Status::ParseError(StrCat("unknown label '", *label, "'"));
      }
      PXML_ASSIGN_OR_RETURN(ExplicitOpf table,
                            ParseExplicitRows(dict, factor));
      PXML_RETURN_IF_ERROR(opf->AddLabelFactor(*label_id, std::move(table)));
    }
    return std::unique_ptr<Opf>(std::move(opf));
  }
  return Status::ParseError(
      StrCat("unknown OPF representation '", representation, "'"));
}

}  // namespace

Result<ProbabilisticInstance> ParsePxml(std::string_view text) {
  PXML_ASSIGN_OR_RETURN(XmlNode doc, ParseXmlDocument(text));
  if (doc.name != "pxml") {
    return Status::ParseError(
        StrCat("expected <pxml> document element, got <", doc.name, ">"));
  }
  ProbabilisticInstance out;
  WeakInstance& weak = out.weak();
  Dictionary& dict = weak.dict();

  // Pass 1: types, then all object names (so lch/OPF references resolve
  // regardless of order).
  for (const XmlNode& section : doc.children) {
    if (section.name != "types") continue;
    for (const XmlNode& type : section.children) {
      const std::string* name = type.Attr("name");
      if (name == nullptr) {
        return Status::ParseError("<type> needs a 'name' attribute");
      }
      std::vector<Value> domain;
      for (const XmlNode& val : type.children) {
        PXML_ASSIGN_OR_RETURN(Value v, ParseTypedValue(val));
        domain.push_back(std::move(v));
      }
      PXML_RETURN_IF_ERROR(
          dict.DefineType(*name, std::move(domain)).status());
    }
  }
  for (const XmlNode& section : doc.children) {
    if (section.name != "object") continue;
    const std::string* id = section.Attr("id");
    if (id == nullptr) {
      return Status::ParseError("<object> needs an 'id' attribute");
    }
    weak.AddObject(*id);
  }
  const std::string* root_name = doc.Attr("root");
  if (root_name == nullptr) {
    return Status::ParseError("<pxml> needs a 'root' attribute");
  }
  auto root = dict.FindObject(*root_name);
  if (!root.has_value()) {
    return Status::ParseError(
        StrCat("root '", *root_name, "' is not an <object>"));
  }
  PXML_RETURN_IF_ERROR(weak.SetRoot(*root));

  // Pass 2: structure and local interpretation.
  for (const XmlNode& section : doc.children) {
    if (section.name != "object") continue;
    ObjectId o = *dict.FindObject(*section.Attr("id"));
    for (const XmlNode& part : section.children) {
      if (part.name == "lch") {
        const std::string* label = part.Attr("label");
        if (label == nullptr) {
          return Status::ParseError("<lch> needs a 'label' attribute");
        }
        LabelId l = dict.InternLabel(*label);
        PXML_ASSIGN_OR_RETURN(IdSet children, ParseChildSet(dict, part));
        for (ObjectId c : children) {
          PXML_RETURN_IF_ERROR(weak.AddPotentialChild(o, l, c));
        }
        const std::string* min = part.Attr("min");
        const std::string* max = part.Attr("max");
        if (min != nullptr || max != nullptr) {
          std::uint32_t lo = min != nullptr
                                 ? static_cast<std::uint32_t>(
                                       std::strtoul(min->c_str(), nullptr, 10))
                                 : 0;
          std::uint32_t hi = max != nullptr
                                 ? static_cast<std::uint32_t>(
                                       std::strtoul(max->c_str(), nullptr, 10))
                                 : IntInterval::kUnbounded;
          PXML_RETURN_IF_ERROR(weak.SetCard(o, l, IntInterval(lo, hi)));
        }
      } else if (part.name == "opf") {
        PXML_ASSIGN_OR_RETURN(std::unique_ptr<Opf> opf, ParseOpf(dict, part));
        PXML_RETURN_IF_ERROR(out.SetOpf(o, std::move(opf)));
      } else if (part.name == "witness") {
        const std::string* type_name = section.Attr("type");
        if (type_name == nullptr) {
          return Status::ParseError("<witness> requires an object 'type'");
        }
        auto type = dict.FindType(*type_name);
        if (!type.has_value()) {
          return Status::ParseError(
              StrCat("unknown type '", *type_name, "'"));
        }
        PXML_ASSIGN_OR_RETURN(Value v, ParseTypedValue(part));
        PXML_RETURN_IF_ERROR(weak.SetLeafValue(o, *type, std::move(v)));
      } else if (part.name == "vpf") {
        Vpf vpf;
        for (const XmlNode& val : part.children) {
          PXML_ASSIGN_OR_RETURN(double p, ParseDoubleAttr(val, "p"));
          PXML_ASSIGN_OR_RETURN(Value v, ParseTypedValue(val));
          vpf.Set(std::move(v), p);
        }
        PXML_RETURN_IF_ERROR(out.SetVpf(o, std::move(vpf)));
      } else {
        return Status::ParseError(
            StrCat("unexpected <", part.name, "> inside <object>"));
      }
    }
    // A typed object without a witness still needs its type recorded.
    const std::string* type_name = section.Attr("type");
    if (type_name != nullptr && !weak.TypeOf(o).has_value()) {
      auto type = dict.FindType(*type_name);
      if (!type.has_value()) {
        return Status::ParseError(StrCat("unknown type '", *type_name, "'"));
      }
      PXML_RETURN_IF_ERROR(weak.SetLeafType(o, *type));
    }
  }
  return out;
}

Result<ProbabilisticInstance> ReadPxmlFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IoError(StrCat("cannot open '", path, "'"));
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParsePxml(buffer.str());
}

}  // namespace pxml
