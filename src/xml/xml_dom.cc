#include "xml/xml_dom.h"

#include <cstdlib>

#include "util/strings.h"

namespace pxml {
namespace xml_internal {

// ------------------------------------------------------- tiny XML parser

const std::string* XmlNode::Attr(std::string_view key) const {
  for (const auto& [k, v] : attrs) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::string XmlUnescape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] != '&') {
      out += text[i];
      continue;
    }
    if (text.substr(i, 5) == "&amp;") {
      out += '&';
      i += 4;
    } else if (text.substr(i, 4) == "&lt;") {
      out += '<';
      i += 3;
    } else if (text.substr(i, 4) == "&gt;") {
      out += '>';
      i += 3;
    } else if (text.substr(i, 6) == "&quot;") {
      out += '"';
      i += 5;
    } else {
      out += '&';
    }
  }
  return out;
}

class XmlParser {
 public:
  explicit XmlParser(std::string_view text) : text_(text) {}

  Result<XmlNode> ParseDocument() {
    SkipWhitespace();
    PXML_ASSIGN_OR_RETURN(XmlNode root, ParseElement());
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Fail("trailing content after the document element");
    }
    return root;
  }

 private:
  Status Fail(std::string_view message) const {
    // Report a line number for easier debugging of hand-written files.
    std::size_t line = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') ++line;
    }
    return Status::ParseError(StrCat("line ", line, ": ", message));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Eat(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  static bool IsNameChar(char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
           (c >= '0' && c <= '9') || c == '-' || c == '_' || c == ':';
  }

  std::string ParseName() {
    std::size_t start = pos_;
    while (pos_ < text_.size() && IsNameChar(text_[pos_])) ++pos_;
    return std::string(text_.substr(start, pos_ - start));
  }

  Result<XmlNode> ParseElement() {
    if (!Eat('<')) return Fail("expected '<'");
    XmlNode node;
    node.name = ParseName();
    if (node.name.empty()) return Fail("expected element name");
    for (;;) {
      SkipWhitespace();
      if (Eat('/')) {
        if (!Eat('>')) return Fail("expected '>' after '/'");
        return node;  // self-closing
      }
      if (Eat('>')) break;
      // Attribute.
      std::string key = ParseName();
      if (key.empty()) return Fail("expected attribute name");
      if (!Eat('=') || !Eat('"')) {
        return Fail(StrCat("expected =\"...\" after attribute '", key, "'"));
      }
      std::size_t start = pos_;
      while (pos_ < text_.size() && text_[pos_] != '"') ++pos_;
      if (pos_ == text_.size()) return Fail("unterminated attribute value");
      node.attrs.emplace_back(
          std::move(key), XmlUnescape(text_.substr(start, pos_ - start)));
      ++pos_;  // closing quote
    }
    // Content: interleaved text and child elements until </name>.
    for (;;) {
      std::size_t start = pos_;
      while (pos_ < text_.size() && text_[pos_] != '<') ++pos_;
      node.text += XmlUnescape(text_.substr(start, pos_ - start));
      if (pos_ == text_.size()) return Fail("unterminated element");
      if (text_.substr(pos_, 2) == "</") {
        pos_ += 2;
        std::string closing = ParseName();
        if (closing != node.name) {
          return Fail(StrCat("mismatched closing tag '", closing,
                             "' for '", node.name, "'"));
        }
        if (!Eat('>')) return Fail("expected '>'");
        return node;
      }
      PXML_ASSIGN_OR_RETURN(XmlNode child, ParseElement());
      node.children.push_back(std::move(child));
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

// --------------------------------------------------- PXML interpretation

Result<Value> ParseTypedValue(const XmlNode& node) {
  const std::string* kind = node.Attr("k");
  if (kind == nullptr || kind->size() != 1) {
    return Status::ParseError(
        StrCat("<", node.name, "> needs a one-letter 'k' attribute"));
  }
  const std::string& text = node.text;
  switch ((*kind)[0]) {
    case 's':
      return Value(text);
    case 'i': {
      char* end = nullptr;
      long long v = std::strtoll(text.c_str(), &end, 10);
      if (end == text.c_str()) {
        return Status::ParseError(StrCat("bad integer '", text, "'"));
      }
      return Value(static_cast<std::int64_t>(v));
    }
    case 'd': {
      char* end = nullptr;
      double v = std::strtod(text.c_str(), &end);
      if (end == text.c_str()) {
        return Status::ParseError(StrCat("bad double '", text, "'"));
      }
      return Value(v);
    }
    case 'b':
      return Value(text == "true");
    default:
      return Status::ParseError(StrCat("unknown value kind '", *kind, "'"));
  }
}

Result<double> ParseDoubleAttr(const XmlNode& node, std::string_view key) {
  const std::string* p = node.Attr(key);
  if (p == nullptr) {
    return Status::ParseError(
        StrCat("<", node.name, "> needs a '", key, "' attribute"));
  }
  char* end = nullptr;
  double v = std::strtod(p->c_str(), &end);
  if (end == p->c_str()) {
    return Status::ParseError(StrCat("bad number '", *p, "'"));
  }
  return v;
}

/// Whitespace-separated object names in an element's text.
std::vector<std::string> SplitNames(const std::string& text) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : text) {
    if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
      if (!cur.empty()) out.push_back(std::move(cur));
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (!cur.empty()) out.push_back(std::move(cur));
  return out;
}

Result<IdSet> ParseChildSet(const Dictionary& dict, const XmlNode& node) {
  std::vector<std::uint32_t> ids;
  for (const std::string& name : SplitNames(node.text)) {
    auto id = dict.FindObject(name);
    if (!id.has_value()) {
      return Status::ParseError(StrCat("unknown object '", name, "'"));
    }
    ids.push_back(*id);
  }
  return IdSet(std::move(ids));
}


Result<XmlNode> ParseXmlDocument(std::string_view text) {
  XmlParser parser(text);
  return parser.ParseDocument();
}

}  // namespace xml_internal
}  // namespace pxml
