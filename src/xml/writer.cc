#include "xml/writer.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/strings.h"

namespace pxml {

namespace {

char KindCode(Value::Kind kind) {
  switch (kind) {
    case Value::Kind::kString:
      return 's';
    case Value::Kind::kInt:
      return 'i';
    case Value::Kind::kDouble:
      return 'd';
    case Value::Kind::kBool:
      return 'b';
  }
  return 's';
}

std::string FormatProb(double p) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", p);
  return buf;
}

std::string FormatDouble(double d) { return FormatProb(d); }

/// <tag k="s" extra>payload</tag> for a Value.
void WriteValueElement(std::ostream& os, const std::string& tag,
                       const Value& v, const std::string& extra_attrs) {
  os << '<' << tag << " k=\"" << KindCode(v.kind()) << '"' << extra_attrs
     << '>';
  if (v.is_double()) {
    os << FormatDouble(v.AsDouble());
  } else {
    os << XmlEscape(v.ToString());
  }
  os << "</" << tag << '>';
}

void WriteExplicitRows(std::ostream& os, const Dictionary& dict,
                       const ExplicitOpf& opf) {
  for (const OpfEntry& e : opf.Entries()) {
    os << "   <row p=\"" << FormatProb(e.prob) << "\">";
    bool first = true;
    for (ObjectId c : e.child_set) {
      if (!first) os << ' ';
      first = false;
      os << XmlEscape(dict.ObjectName(c));
    }
    os << "</row>\n";
  }
}

void WriteOpf(std::ostream& os, const Dictionary& dict, const Opf& opf) {
  os << "  <opf rep=\"" << opf.RepresentationName() << "\">\n";
  if (const auto* exp = dynamic_cast<const ExplicitOpf*>(&opf)) {
    WriteExplicitRows(os, dict, *exp);
  } else if (const auto* ind = dynamic_cast<const IndependentOpf*>(&opf)) {
    for (const auto& [child, p] : ind->children()) {
      os << "   <child p=\"" << FormatProb(p) << "\">"
         << XmlEscape(dict.ObjectName(child)) << "</child>\n";
    }
  } else if (const auto* pl =
                 dynamic_cast<const PerLabelProductOpf*>(&opf)) {
    for (const auto& [label, table] : pl->factor_views()) {
      os << "   <factor label=\"" << XmlEscape(dict.LabelName(label))
         << "\">\n";
      WriteExplicitRows(os, dict, *table);
      os << "   </factor>\n";
    }
  } else {
    // Unknown representation: fall back to the equivalent explicit table.
    WriteExplicitRows(os, dict, ExplicitOpf::FromEntries(opf.Entries()));
  }
  os << "  </opf>\n";
}

}  // namespace

std::string XmlEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += "&quot;";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string SerializePxml(const ProbabilisticInstance& instance) {
  const WeakInstance& weak = instance.weak();
  const Dictionary& dict = weak.dict();
  std::ostringstream os;
  os << "<pxml root=\""
     << (weak.HasRoot() ? XmlEscape(dict.ObjectName(weak.root()))
                        : std::string())
     << "\">\n";
  // Types actually used by leaves.
  std::vector<bool> used(dict.num_types(), false);
  for (ObjectId o : weak.Objects()) {
    auto t = weak.TypeOf(o);
    if (t.has_value()) used[*t] = true;
  }
  os << " <types>\n";
  for (TypeId t = 0; t < dict.num_types(); ++t) {
    if (!used[t]) continue;
    os << "  <type name=\"" << XmlEscape(dict.TypeName(t)) << "\">";
    for (const Value& v : dict.TypeDomain(t)) {
      WriteValueElement(os, "val", v, "");
    }
    os << "</type>\n";
  }
  os << " </types>\n";

  for (ObjectId o : weak.Objects()) {
    os << " <object id=\"" << XmlEscape(dict.ObjectName(o)) << '"';
    auto type = weak.TypeOf(o);
    if (type.has_value()) {
      os << " type=\"" << XmlEscape(dict.TypeName(*type)) << '"';
    }
    os << ">\n";
    for (LabelId l : weak.LabelsOf(o)) {
      os << "  <lch label=\"" << XmlEscape(dict.LabelName(l)) << '"';
      IntInterval card = weak.Card(o, l);
      if (!card.IsUnconstrained()) {
        os << " min=\"" << card.min() << "\"";
        if (card.max() != IntInterval::kUnbounded) {
          os << " max=\"" << card.max() << "\"";
        }
      }
      os << '>';
      bool first = true;
      for (ObjectId c : weak.Lch(o, l)) {
        if (!first) os << ' ';
        first = false;
        os << XmlEscape(dict.ObjectName(c));
      }
      os << "</lch>\n";
    }
    if (const Opf* opf = instance.GetOpf(o)) {
      WriteOpf(os, dict, *opf);
    }
    auto witness = weak.ValueOf(o);
    if (witness.has_value()) {
      os << "  ";
      WriteValueElement(os, "witness", *witness, "");
      os << '\n';
    }
    if (const Vpf* vpf = instance.GetVpf(o)) {
      os << "  <vpf>";
      for (const Vpf::Entry& e : vpf->Entries()) {
        WriteValueElement(os, "val", e.value,
                          StrCat(" p=\"", FormatProb(e.prob), "\""));
      }
      os << "</vpf>\n";
    }
    os << " </object>\n";
  }
  os << "</pxml>\n";
  return os.str();
}

Status WritePxmlFile(const ProbabilisticInstance& instance,
                     const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::IoError(StrCat("cannot open '", path, "' for writing"));
  }
  out << SerializePxml(instance);
  out.flush();
  if (!out) {
    return Status::IoError(StrCat("write to '", path, "' failed"));
  }
  return Status::Ok();
}

}  // namespace pxml
