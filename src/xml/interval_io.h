#ifndef PXML_XML_INTERVAL_IO_H_
#define PXML_XML_INTERVAL_IO_H_

#include <string>
#include <string_view>

#include "interval/interval_model.h"
#include "util/status.h"

namespace pxml {

/// Serializes an interval instance to the textual IPXML format — the
/// PXML format with an <ipxml> document element and lo/hi attributes in
/// place of point probabilities:
///
///   <ipxml root="R">
///    <types>...</types>
///    <object id="R">
///     <lch label="paper">P</lch>
///     <iopf><row lo="0.6" hi="0.8">P</row><row lo="0.2" hi="0.4"></row>
///     </iopf>
///    </object>
///    <object id="Y" type="t"><ivpf><val k="s" lo="0.1" hi="0.3">a</val>
///    ...</ivpf></object>
///   </ipxml>
std::string SerializeIntervalPxml(const IntervalInstance& instance);

/// SerializeIntervalPxml to a file.
Status WriteIntervalPxmlFile(const IntervalInstance& instance,
                             const std::string& path);

/// Parses the IPXML format back; Serialize/Parse round-trips exactly.
Result<IntervalInstance> ParseIntervalPxml(std::string_view text);

/// ParseIntervalPxml on a file's contents.
Result<IntervalInstance> ReadIntervalPxmlFile(const std::string& path);

}  // namespace pxml

#endif  // PXML_XML_INTERVAL_IO_H_
