#ifndef PXML_XML_PARSER_H_
#define PXML_XML_PARSER_H_

#include <string>
#include <string_view>

#include "core/probabilistic_instance.h"
#include "util/status.h"

namespace pxml {

/// Parses the textual PXML format produced by SerializePxml back into a
/// probabilistic instance. Serialize/Parse round-trips exactly (same
/// structure, same probabilities to %.17g, same OPF representations).
Result<ProbabilisticInstance> ParsePxml(std::string_view text);

/// ParsePxml on a file's contents.
Result<ProbabilisticInstance> ReadPxmlFile(const std::string& path);

}  // namespace pxml

#endif  // PXML_XML_PARSER_H_
