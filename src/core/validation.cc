#include "core/validation.h"

#include "core/potential_children.h"
#include "util/strings.h"

namespace pxml {

Status ValidateWeakInstance(const WeakInstance& weak) {
  if (!weak.HasRoot()) {
    return Status::FailedPrecondition("weak instance has no root");
  }
  const Dictionary& dict = weak.dict();
  for (ObjectId o : weak.Objects()) {
    // Disjointness of per-label lch families.
    IdSet seen;
    for (LabelId l : weak.LabelsOf(o)) {
      const IdSet& lch = weak.Lch(o, l);
      IdSet overlap = seen.Intersect(lch);
      if (!overlap.empty()) {
        return Status::FailedPrecondition(StrCat(
            "object '", dict.ObjectName(o),
            "' lists the same child under two labels (child id ",
            overlap[0], ")"));
      }
      seen = seen.Union(lch);
      IntInterval card = weak.Card(o, l);
      if (!card.valid()) {
        return Status::FailedPrecondition(
            StrCat("card(", dict.ObjectName(o), ",", dict.LabelName(l),
                   ") has min > max"));
      }
      if (card.min() > lch.size()) {
        return Status::FailedPrecondition(StrCat(
            "card(", dict.ObjectName(o), ",", dict.LabelName(l), ").min=",
            card.min(), " exceeds |lch|=", lch.size(),
            " — no compatible world exists"));
      }
    }
    if (weak.IsLeaf(o)) {
      auto type = weak.TypeOf(o);
      if (type.has_value()) {
        if (*type >= dict.num_types() || dict.TypeDomain(*type).empty()) {
          return Status::FailedPrecondition(
              StrCat("leaf '", dict.ObjectName(o),
                     "' has a type with an empty domain"));
        }
        auto val = weak.ValueOf(o);
        if (val.has_value() && !dict.DomainContains(*type, *val)) {
          return Status::FailedPrecondition(
              StrCat("leaf '", dict.ObjectName(o),
                     "' has val outside dom(tau)"));
        }
      }
    }
  }
  return CheckAcyclic(weak);
}

Status ValidateProbabilisticInstance(const ProbabilisticInstance& instance,
                                     const ValidationOptions& options) {
  const WeakInstance& weak = instance.weak();
  PXML_RETURN_IF_ERROR(ValidateWeakInstance(weak));
  const Dictionary& dict = weak.dict();

  for (ObjectId o : weak.Objects()) {
    if (!weak.IsLeaf(o)) {
      const Opf* opf = instance.GetOpf(o);
      if (opf == nullptr) {
        if (options.require_complete_interpretation) {
          return Status::FailedPrecondition(
              StrCat("non-leaf '", dict.ObjectName(o), "' has no OPF"));
        }
        continue;
      }
      if (options.check_opf_support) {
        PXML_RETURN_IF_ERROR(opf->Validate());
        for (const OpfEntry& e : opf->Entries()) {
          if (e.prob > 0.0 && !IsPotentialChildSet(weak, o, e.child_set)) {
            return Status::FailedPrecondition(StrCat(
                "OPF of '", dict.ObjectName(o), "' assigns mass to ",
                e.child_set.ToString(), " which is not in PC(o)"));
          }
        }
      }
    } else {
      const Vpf* vpf = instance.GetVpf(o);
      auto type = weak.TypeOf(o);
      if (vpf == nullptr) {
        if (options.require_complete_interpretation && type.has_value()) {
          return Status::FailedPrecondition(
              StrCat("leaf '", dict.ObjectName(o), "' has no VPF"));
        }
        continue;
      }
      if (!type.has_value()) {
        return Status::FailedPrecondition(
            StrCat("leaf '", dict.ObjectName(o), "' has a VPF but no type"));
      }
      if (options.check_opf_support) {
        PXML_RETURN_IF_ERROR(vpf->Validate(dict, *type));
      }
    }
  }
  return Status::Ok();
}

}  // namespace pxml
