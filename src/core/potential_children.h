#ifndef PXML_CORE_POTENTIAL_CHILDREN_H_
#define PXML_CORE_POTENTIAL_CHILDREN_H_

#include <cstddef>
#include <vector>

#include "core/weak_instance.h"
#include "util/id_set.h"
#include "util/status.h"

namespace pxml {

/// Default cap on the number of sets PL / PC enumeration may produce
/// before failing instead of exhausting memory. PC enumeration is
/// inherently exponential (the paper's experiments use 2^b entries per
/// object); the cap only guards the *explicit* enumeration entry points.
inline constexpr std::size_t kDefaultMaxPotentialSets = 1u << 22;

/// PL(o, l) (Def 3.5): every subset c of lch(o, l) whose size lies in
/// card(o, l), in canonical order. Empty result means no valid choice
/// exists (card.min exceeds |lch|), which makes PC(o) empty too.
Result<std::vector<IdSet>> PotentialLabelChildSets(
    const WeakInstance& weak, ObjectId o, LabelId l,
    std::size_t max_sets = kDefaultMaxPotentialSets);

/// PC(o) (Def 3.6): all potential child sets of o — the unions of one
/// potential l-child set per label of o (the minimal-hitting-set
/// construction specialized to disjoint per-label families). For an
/// object with no labels this is the singleton {∅}.
Result<std::vector<IdSet>> PotentialChildSets(
    const WeakInstance& weak, ObjectId o,
    std::size_t max_sets = kDefaultMaxPotentialSets);

/// True iff `c` is a member of PC(o), decided without enumeration: c must
/// split into per-label parts with every member in lch(o, l) and each
/// part's size within card(o, l).
bool IsPotentialChildSet(const WeakInstance& weak, ObjectId o,
                         const IdSet& c);

/// |PC(o)| without materializing the sets (product over labels of the
/// binomial-sum counts).
Result<std::size_t> CountPotentialChildSets(const WeakInstance& weak,
                                            ObjectId o);

}  // namespace pxml

#endif  // PXML_CORE_POTENTIAL_CHILDREN_H_
