#include "core/probabilistic_instance.h"

#include <sstream>

#include "util/strings.h"

namespace pxml {

ProbabilisticInstance::ProbabilisticInstance(
    const ProbabilisticInstance& other)
    : weak_(other.weak_),
      // ℘ entries are immutable once installed, so the copy aliases them
      // (copy-on-write: SetOpf/SetVpf replace the pointer, never the
      // pointee). Only the pointer arrays and the weak structure copy.
      opfs_(other.opfs_),
      vpfs_(other.vpfs_),
      version_(other.version_),
      structure_version_(other.structure_version_),
      subtree_change_(other.subtree_change_) {}

ProbabilisticInstance& ProbabilisticInstance::operator=(
    const ProbabilisticInstance& other) {
  if (this == &other) return *this;
  ProbabilisticInstance copy(other);
  *this = std::move(copy);
  return *this;
}

void ProbabilisticInstance::EnsureSize(ObjectId o) {
  if (o >= opfs_.size()) opfs_.resize(o + 1);
  if (o >= vpfs_.size()) vpfs_.resize(o + 1);
}

void ProbabilisticInstance::NoteLocalChange(ObjectId o) {
  ++version_;
  // Stamp o and every potential ancestor with the new version. On a tree
  // this is one root-ward walk (O(depth)); on a DAG the version guard
  // makes diamond re-visits O(1).
  std::vector<ObjectId> stack{o};
  while (!stack.empty()) {
    ObjectId x = stack.back();
    stack.pop_back();
    if (x >= subtree_change_.size()) subtree_change_.resize(x + 1, 0);
    if (subtree_change_[x] == version_) continue;
    subtree_change_[x] = version_;
    for (ObjectId p : weak_.PotentialParents(x)) stack.push_back(p);
  }
}

Status ProbabilisticInstance::SetOpf(ObjectId o, std::unique_ptr<Opf> opf) {
  if (!weak_.Present(o)) {
    return Status::NotFound(StrCat("object id ", o, " not present"));
  }
  if (opf == nullptr) {
    return Status::InvalidArgument("OPF must not be null");
  }
  EnsureSize(o);
  opfs_[o] = std::shared_ptr<const Opf>(std::move(opf));
  NoteLocalChange(o);
  return Status::Ok();
}

Status ProbabilisticInstance::SetVpf(ObjectId o, Vpf vpf) {
  if (!weak_.Present(o)) {
    return Status::NotFound(StrCat("object id ", o, " not present"));
  }
  EnsureSize(o);
  vpfs_[o] = std::make_shared<const Vpf>(std::move(vpf));
  NoteLocalChange(o);
  return Status::Ok();
}

const Opf* ProbabilisticInstance::GetOpf(ObjectId o) const {
  if (o >= opfs_.size()) return nullptr;
  return opfs_[o].get();
}

const Vpf* ProbabilisticInstance::GetVpf(ObjectId o) const {
  if (o >= vpfs_.size()) return nullptr;
  return vpfs_[o].get();
}

std::size_t ProbabilisticInstance::TotalOpfEntries() const {
  std::size_t n = 0;
  for (const auto& opf : opfs_) {
    if (opf) n += opf->NumEntries();
  }
  return n;
}

std::string ProbabilisticInstance::ToString() const {
  std::ostringstream os;
  os << weak_.ToString();
  for (ObjectId o : weak_.Objects()) {
    if (const Opf* opf = GetOpf(o)) {
      os << dict().ObjectName(o) << ": " << opf->ToString(dict()) << '\n';
    } else if (const Vpf* vpf = GetVpf(o)) {
      os << dict().ObjectName(o) << ": VPF " << vpf->ToString() << '\n';
    }
  }
  return os.str();
}

}  // namespace pxml
