#ifndef PXML_CORE_SEMANTICS_H_
#define PXML_CORE_SEMANTICS_H_

#include <vector>

#include "core/probabilistic_instance.h"
#include "graph/instance.h"
#include "util/status.h"

namespace pxml {

/// One possible world: a semistructured instance compatible with a weak
/// instance, together with its probability under a global interpretation.
struct World {
  SemistructuredInstance instance;
  double prob = 0.0;
};

struct EnumerationOptions {
  /// Fail instead of producing more worlds than this.
  std::size_t max_worlds = 1u << 20;
  /// If true, range over all of PC(o) / dom(tau(o)) even where the local
  /// interpretation assigns probability 0 (the full Domain(W) of Def 4.1);
  /// if false (default), only positive-probability worlds are produced.
  bool include_zero_probability_worlds = false;
};

/// Enumerates Domain(I) with the global interpretation P_℘ of Def 4.4:
/// every semistructured instance compatible with I's weak instance,
/// weighted by the product of local OPF/VPF entries. By Theorem 1 the
/// probabilities of the result sum to 1 (a property the test suite
/// asserts). Exponential — this is the *oracle*, not the query engine.
Result<std::vector<World>> EnumerateWorlds(
    const ProbabilisticInstance& instance,
    const EnumerationOptions& options = {});

/// The k most probable compatible worlds, in descending probability —
/// the MAP-style query over the possible-worlds distribution ("what are
/// the most likely actual documents?"). Computed by the same recursive
/// enumeration with branch-and-bound pruning: a partial world's product
/// of probabilities only shrinks as more choices are made, so any prefix
/// below the current k-th best can be cut. Far faster than full
/// enumeration when k is small and the distribution is skewed, but still
/// worst-case exponential (use `options.max_worlds` as a safety net; it
/// bounds *emitted* candidates, not pruned branches).
Result<std::vector<World>> MostProbableWorlds(
    const ProbabilisticInstance& instance, std::size_t k,
    const EnumerationOptions& options = {});

/// Checks compatibility of `world` with `weak` (Def 4.1): same root,
/// objects drawn from V_W and reachable from the root, every edge allowed
/// by lch, every per-label child count within card, and every W-leaf
/// carrying a value from dom(tau).
Status CheckCompatible(const WeakInstance& weak,
                       const SemistructuredInstance& world);

/// P_℘(world) (Def 4.4): the product over the world's objects of the OPF
/// probability of their child set (non-leaves) or the VPF probability of
/// their value (leaves). Fails if the world is incompatible or ℘ is
/// missing a required local function.
Result<double> WorldProbability(const ProbabilisticInstance& instance,
                                const SemistructuredInstance& world);

}  // namespace pxml

#endif  // PXML_CORE_SEMANTICS_H_
