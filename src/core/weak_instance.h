#ifndef PXML_CORE_WEAK_INSTANCE_H_
#define PXML_CORE_WEAK_INSTANCE_H_

#include <optional>
#include <string>
#include <vector>

#include "graph/instance.h"
#include "graph/path.h"
#include "graph/symbols.h"
#include "prob/cardinality.h"
#include "prob/value.h"
#include "util/id_set.h"
#include "util/interval.h"
#include "util/status.h"

namespace pxml {

/// A weak instance W = (V, lch, tau, val, card) (Def 3.4): the structural
/// half of a probabilistic instance. For every object o and label l,
/// lch(o, l) lists the objects that *may* be l-children of o, and
/// card(o, l) bounds how many of them occur in any compatible world.
///
/// Leaf objects (those with no lch entries) may carry a type tau(o) —
/// whose finite domain the leaf's value ranges over in compatible worlds —
/// and optionally a witnessed value val(o) from that domain.
///
/// Library invariant (checked by ValidateWeakInstance): the lch families
/// of one object are pairwise disjoint across labels, i.e. an object
/// cannot be a potential child of the same parent under two different
/// labels. Every example in the paper satisfies this, and it makes each
/// potential child set decompose uniquely into per-label parts.
class WeakInstance {
 public:
  WeakInstance() = default;

  Dictionary& dict() { return dict_; }
  const Dictionary& dict() const { return dict_; }
  void SetDictionary(Dictionary dict) { dict_ = std::move(dict); }

  /// Interns `name` and adds the object to V (idempotent).
  ObjectId AddObject(std::string_view name);
  Status AddObjectById(ObjectId o);

  Status SetRoot(ObjectId o);
  ObjectId root() const { return root_; }
  bool HasRoot() const { return root_ != kInvalidId; }

  bool Present(ObjectId o) const {
    return o < nodes_.size() && nodes_[o].present;
  }
  std::size_t num_objects() const { return num_present_; }
  std::vector<ObjectId> Objects() const;

  /// Declares `child` a potential l-child of `o` (idempotent per triple).
  Status AddPotentialChild(ObjectId o, LabelId l, ObjectId child);

  /// lch(o, l); empty if no entry.
  const IdSet& Lch(ObjectId o, LabelId l) const;

  /// The labels l with lch(o, l) non-empty, ascending.
  std::vector<LabelId> LabelsOf(ObjectId o) const;

  /// Union of lch(o, l) over all labels.
  IdSet AllPotentialChildren(ObjectId o) const;

  /// The potential parents of o: objects having o in some lch set.
  const std::vector<ObjectId>& PotentialParents(ObjectId o) const {
    return nodes_[o].parents;
  }

  /// The label under which `child` may hang off `o`, if any. Unique by
  /// the per-object disjointness invariant.
  std::optional<LabelId> ChildLabel(ObjectId o, ObjectId child) const;

  /// True iff o has no lch entries (a leaf of the weak instance).
  bool IsLeaf(ObjectId o) const {
    return Present(o) && nodes_[o].lch.empty();
  }

  /// Sets card(o, l); both endpoints must exist and min <= max.
  Status SetCard(ObjectId o, LabelId l, IntInterval interval);
  IntInterval Card(ObjectId o, LabelId l) const { return card_.Get(o, l); }
  const CardinalityMap& card() const { return card_; }

  /// Assigns tau(o) = type for a leaf.
  Status SetLeafType(ObjectId o, TypeId type);
  /// Assigns tau(o) = type and the witnessed value val(o) = v (v must be
  /// in dom(type)).
  Status SetLeafValue(ObjectId o, TypeId type, Value v);

  std::optional<TypeId> TypeOf(ObjectId o) const;
  std::optional<Value> ValueOf(ObjectId o) const;

  /// Multi-line human-readable rendering.
  std::string ToString() const;

 private:
  struct LchEntry {
    LabelId label;
    IdSet children;
  };
  struct Node {
    bool present = false;
    std::vector<LchEntry> lch;  // sorted by label
    std::vector<ObjectId> parents;
    std::optional<TypeId> type;
    std::optional<Value> value;
  };

  void EnsureSize(ObjectId o);

  Dictionary dict_;
  std::vector<Node> nodes_;
  CardinalityMap card_;
  ObjectId root_ = kInvalidId;
  std::size_t num_present_ = 0;
};

/// G_W, the weak instance graph (Def 3.7): same vertices, an edge o -> o'
/// iff o' belongs to some potential child set of o. Returned as a
/// SemistructuredInstance sharing W's dictionary, with each edge labeled
/// by the (unique) label under which the child may occur.
Result<SemistructuredInstance> WeakInstanceGraph(const WeakInstance& weak);

/// OK iff G_W is acyclic (Def 4.3) — required for coherent semantics.
Status CheckAcyclic(const WeakInstance& weak);

/// OK iff G_W is a tree (at most one potential parent per object, none
/// for the root, everything reachable) — the shape the efficient
/// Section-6 algorithms assume, under which every compatible world is a
/// tree.
Status CheckWeakTree(const WeakInstance& weak);

/// Forward path layers of p over the weak instance's lch structure:
/// F_0 = {p.start}, F_{i+1} = union of lch(o, l_{i+1}) over o in F_i.
/// These are the objects that *may* satisfy each prefix of p in some
/// compatible world.
Result<std::vector<IdSet>> WeakPathLayers(const WeakInstance& weak,
                                          const PathExpression& path);

/// WeakPathLayers pruned backward: K_i keeps only objects with an
/// l_{i+1}-potential-child in K_{i+1} — the objects on some potential
/// full match of p (the "path ancestors" of §6.2 plus the targets).
Result<std::vector<IdSet>> PrunedWeakPathLayers(const WeakInstance& weak,
                                                const PathExpression& path);

}  // namespace pxml

#endif  // PXML_CORE_WEAK_INSTANCE_H_
