#include "core/weak_instance.h"

#include <algorithm>
#include <sstream>

#include "graph/algorithms.h"
#include "util/strings.h"

namespace pxml {

namespace {
const IdSet kEmptySet;
}  // namespace

void WeakInstance::EnsureSize(ObjectId o) {
  if (o >= nodes_.size()) nodes_.resize(o + 1);
}

ObjectId WeakInstance::AddObject(std::string_view name) {
  ObjectId o = dict_.InternObject(name);
  EnsureSize(o);
  if (!nodes_[o].present) {
    nodes_[o].present = true;
    ++num_present_;
  }
  return o;
}

Status WeakInstance::AddObjectById(ObjectId o) {
  if (o >= dict_.num_objects()) {
    return Status::NotFound(StrCat("object id ", o, " not in dictionary"));
  }
  EnsureSize(o);
  if (!nodes_[o].present) {
    nodes_[o].present = true;
    ++num_present_;
  }
  return Status::Ok();
}

Status WeakInstance::SetRoot(ObjectId o) {
  if (!Present(o)) {
    return Status::NotFound(StrCat("root object id ", o, " not present"));
  }
  root_ = o;
  return Status::Ok();
}

std::vector<ObjectId> WeakInstance::Objects() const {
  std::vector<ObjectId> out;
  out.reserve(num_present_);
  for (ObjectId o = 0; o < nodes_.size(); ++o) {
    if (nodes_[o].present) out.push_back(o);
  }
  return out;
}

Status WeakInstance::AddPotentialChild(ObjectId o, LabelId l,
                                       ObjectId child) {
  if (!Present(o) || !Present(child)) {
    return Status::NotFound("lch endpoint not present in weak instance");
  }
  if (l >= dict_.num_labels()) {
    return Status::NotFound(StrCat("label id ", l, " not in dictionary"));
  }
  auto& lch = nodes_[o].lch;
  auto it = std::lower_bound(
      lch.begin(), lch.end(), l,
      [](const LchEntry& e, LabelId key) { return e.label < key; });
  if (it == lch.end() || it->label != l) {
    it = lch.insert(it, LchEntry{l, IdSet()});
  }
  if (it->children.Contains(child)) return Status::Ok();
  it->children = it->children.With(child);
  auto& parents = nodes_[child].parents;
  if (std::find(parents.begin(), parents.end(), o) == parents.end()) {
    parents.push_back(o);
  }
  return Status::Ok();
}

const IdSet& WeakInstance::Lch(ObjectId o, LabelId l) const {
  if (!Present(o)) return kEmptySet;
  const auto& lch = nodes_[o].lch;
  auto it = std::lower_bound(
      lch.begin(), lch.end(), l,
      [](const LchEntry& e, LabelId key) { return e.label < key; });
  if (it != lch.end() && it->label == l) return it->children;
  return kEmptySet;
}

std::vector<LabelId> WeakInstance::LabelsOf(ObjectId o) const {
  std::vector<LabelId> out;
  if (!Present(o)) return out;
  for (const LchEntry& e : nodes_[o].lch) out.push_back(e.label);
  return out;
}

IdSet WeakInstance::AllPotentialChildren(ObjectId o) const {
  IdSet out;
  if (!Present(o)) return out;
  for (const LchEntry& e : nodes_[o].lch) out = out.Union(e.children);
  return out;
}

std::optional<LabelId> WeakInstance::ChildLabel(ObjectId o,
                                                ObjectId child) const {
  if (!Present(o)) return std::nullopt;
  for (const LchEntry& e : nodes_[o].lch) {
    if (e.children.Contains(child)) return e.label;
  }
  return std::nullopt;
}

Status WeakInstance::SetCard(ObjectId o, LabelId l, IntInterval interval) {
  if (!Present(o)) {
    return Status::NotFound(StrCat("object id ", o, " not present"));
  }
  if (!interval.valid()) {
    return Status::InvalidArgument(
        StrCat("invalid cardinality interval ", interval.ToString()));
  }
  card_.Set(o, l, interval);
  return Status::Ok();
}

Status WeakInstance::SetLeafType(ObjectId o, TypeId type) {
  if (!Present(o)) {
    return Status::NotFound(StrCat("object id ", o, " not present"));
  }
  if (type >= dict_.num_types()) {
    return Status::NotFound(StrCat("type id ", type, " not in dictionary"));
  }
  nodes_[o].type = type;
  return Status::Ok();
}

Status WeakInstance::SetLeafValue(ObjectId o, TypeId type, Value v) {
  PXML_RETURN_IF_ERROR(SetLeafType(o, type));
  if (!dict_.DomainContains(type, v)) {
    return Status::InvalidArgument(
        StrCat("value '", v.ToString(), "' not in dom(",
               dict_.TypeName(type), ")"));
  }
  nodes_[o].value = std::move(v);
  return Status::Ok();
}

std::optional<TypeId> WeakInstance::TypeOf(ObjectId o) const {
  if (!Present(o)) return std::nullopt;
  return nodes_[o].type;
}

std::optional<Value> WeakInstance::ValueOf(ObjectId o) const {
  if (!Present(o)) return std::nullopt;
  return nodes_[o].value;
}

std::string WeakInstance::ToString() const {
  std::ostringstream os;
  os << "weak instance root="
     << (HasRoot() ? dict_.ObjectName(root_) : std::string("<none>"))
     << " objects=" << num_present_ << '\n';
  for (ObjectId o : Objects()) {
    os << "  " << dict_.ObjectName(o);
    if (nodes_[o].type) os << " : " << dict_.TypeName(*nodes_[o].type);
    if (nodes_[o].value) os << " = " << nodes_[o].value->ToString();
    for (const LchEntry& e : nodes_[o].lch) {
      os << "  lch[" << dict_.LabelName(e.label) << "]=";
      os << '{';
      bool first = true;
      for (ObjectId c : e.children) {
        if (!first) os << ',';
        first = false;
        os << dict_.ObjectName(c);
      }
      os << '}' << " card=" << card_.Get(o, e.label).ToString();
    }
    os << '\n';
  }
  return os.str();
}

Result<SemistructuredInstance> WeakInstanceGraph(const WeakInstance& weak) {
  SemistructuredInstance graph;
  graph.SetDictionary(weak.dict());
  for (ObjectId o : weak.Objects()) {
    PXML_RETURN_IF_ERROR(graph.AddObjectById(o));
  }
  if (weak.HasRoot()) {
    PXML_RETURN_IF_ERROR(graph.SetRoot(weak.root()));
  }
  for (ObjectId o : weak.Objects()) {
    // PC(o) is non-empty iff PL(o, l) is non-empty for every label of o,
    // i.e. card(o, l).min <= |lch(o, l)|.
    bool pc_nonempty = true;
    for (LabelId l : weak.LabelsOf(o)) {
      if (weak.Card(o, l).min() > weak.Lch(o, l).size()) {
        pc_nonempty = false;
        break;
      }
    }
    if (!pc_nonempty) continue;
    for (LabelId l : weak.LabelsOf(o)) {
      // Some c in PC(o) contains child iff a set in PL(o, l) does, i.e.
      // the interval admits at least one element.
      if (weak.Card(o, l).max() == 0) continue;
      for (ObjectId child : weak.Lch(o, l)) {
        PXML_RETURN_IF_ERROR(graph.AddEdge(o, l, child));
      }
    }
  }
  return graph;
}

Status CheckWeakTree(const WeakInstance& weak) {
  if (!weak.HasRoot()) {
    return Status::NotATree("weak instance has no root");
  }
  PXML_ASSIGN_OR_RETURN(SemistructuredInstance graph,
                        WeakInstanceGraph(weak));
  return CheckTree(graph);
}

Result<std::vector<IdSet>> WeakPathLayers(const WeakInstance& weak,
                                          const PathExpression& path) {
  if (!weak.Present(path.start)) {
    return Status::UnknownObject(
        StrCat("path start object id ", path.start, " not present"));
  }
  std::vector<IdSet> layers;
  layers.reserve(path.labels.size() + 1);
  layers.push_back(IdSet{path.start});
  for (LabelId l : path.labels) {
    IdSet next;
    for (ObjectId o : layers.back()) {
      next = next.Union(weak.Lch(o, l));
    }
    layers.push_back(std::move(next));
  }
  return layers;
}

Result<std::vector<IdSet>> PrunedWeakPathLayers(const WeakInstance& weak,
                                                const PathExpression& path) {
  PXML_ASSIGN_OR_RETURN(std::vector<IdSet> layers,
                        WeakPathLayers(weak, path));
  for (std::size_t i = layers.size() - 1; i-- > 0;) {
    LabelId l = path.labels[i];
    std::vector<std::uint32_t> kept;
    for (ObjectId o : layers[i]) {
      if (!weak.Lch(o, l).Intersect(layers[i + 1]).empty()) {
        kept.push_back(o);
      }
    }
    layers[i] = IdSet(std::move(kept));
  }
  return layers;
}

Status CheckAcyclic(const WeakInstance& weak) {
  PXML_ASSIGN_OR_RETURN(SemistructuredInstance graph,
                        WeakInstanceGraph(weak));
  if (!IsAcyclic(graph)) {
    return Status::FailedPrecondition(
        "weak instance graph contains a cycle (Def 4.3 violated)");
  }
  return Status::Ok();
}

}  // namespace pxml
