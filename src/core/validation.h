#ifndef PXML_CORE_VALIDATION_H_
#define PXML_CORE_VALIDATION_H_

#include "core/probabilistic_instance.h"
#include "core/weak_instance.h"
#include "util/status.h"

namespace pxml {

/// Structural validation of a weak instance:
///  * a root is declared;
///  * per object, the lch families of distinct labels are disjoint (the
///    library invariant from Def 3.6's hitting-set construction);
///  * card intervals are valid and satisfiable (min <= |lch(o, l)|);
///  * every leaf carries a type with a non-empty domain;
///  * any witnessed val(o) is in dom(tau(o));
///  * the weak instance graph G_W is acyclic (Def 4.3).
Status ValidateWeakInstance(const WeakInstance& weak);

/// Options for probabilistic-instance validation.
struct ValidationOptions {
  /// Verify each OPF's mass sums to 1 and each support row is a member of
  /// PC(o). Costs a pass over every OPF row; disable for huge generated
  /// instances you already trust.
  bool check_opf_support = true;
  /// Require every non-leaf with potential children to have an OPF and
  /// every leaf to have a VPF.
  bool require_complete_interpretation = true;
};

/// Full validation per Defs 3.8–3.11: the weak instance checks above plus
/// a valid local interpretation (OPF per non-leaf over PC(o) summing to 1;
/// VPF per leaf over dom(tau(o)) summing to 1).
Status ValidateProbabilisticInstance(const ProbabilisticInstance& instance,
                                     const ValidationOptions& options = {});

}  // namespace pxml

#endif  // PXML_CORE_VALIDATION_H_
