#include "core/semantics.h"

#include <algorithm>
#include <optional>

#include "core/potential_children.h"
#include "graph/algorithms.h"
#include "util/strings.h"

namespace pxml {

namespace {

/// Recursive world enumerator. Objects are visited in a topological order
/// of the weak instance graph, so by the time `o` is visited every
/// potential parent has committed its child set and membership of `o` is
/// decided.
class WorldEnumerator {
 public:
  WorldEnumerator(const ProbabilisticInstance& instance,
                  const EnumerationOptions& options,
                  std::vector<ObjectId> order)
      : instance_(instance),
        weak_(instance.weak()),
        options_(options),
        order_(std::move(order)),
        include_count_(weak_.dict().num_objects(), 0),
        chosen_set_(weak_.dict().num_objects()),
        chosen_value_(weak_.dict().num_objects()) {}

  Result<std::vector<World>> Run() {
    status_ = Status::Ok();
    Recurse(0, 1.0);
    if (!status_.ok()) return status_;
    return std::move(worlds_);
  }

  /// Top-k mode: keep only the k most probable worlds, pruning any
  /// branch whose prefix probability cannot beat the current k-th best
  /// (probabilities only shrink as choices accumulate).
  Result<std::vector<World>> RunTopK(std::size_t k) {
    status_ = Status::Ok();
    top_k_ = k;
    Recurse(0, 1.0);
    if (!status_.ok()) return status_;
    std::sort(worlds_.begin(), worlds_.end(),
              [](const World& a, const World& b) { return a.prob > b.prob; });
    if (worlds_.size() > top_k_) worlds_.resize(top_k_);
    return std::move(worlds_);
  }

 private:
  /// The pruning threshold: the k-th best probability seen so far.
  double PruneThreshold() const {
    if (top_k_ == 0 || worlds_.size() < top_k_) return 0.0;
    double kth = 1.0;
    // worlds_ is kept trimmed to ~2k entries in top-k mode, so a linear
    // scan stays cheap relative to the enumeration itself.
    std::vector<double> probs;
    probs.reserve(worlds_.size());
    for (const World& w : worlds_) probs.push_back(w.prob);
    std::nth_element(probs.begin(), probs.end() - top_k_, probs.end());
    kth = probs[probs.size() - top_k_];
    return kth;
  }
  bool Included(ObjectId o) const {
    return o == weak_.root() || include_count_[o] > 0;
  }

  void Recurse(std::size_t idx, double prob) {
    if (!status_.ok()) return;
    if (top_k_ != 0 && prob <= PruneThreshold()) return;
    if (idx == order_.size()) {
      Emit(prob);
      return;
    }
    ObjectId o = order_[idx];
    if (!Included(o)) {
      Recurse(idx + 1, prob);
      return;
    }
    if (!weak_.IsLeaf(o)) {
      EnumerateChildChoices(o, idx, prob);
    } else {
      EnumerateValueChoices(o, idx, prob);
    }
  }

  void EnumerateChildChoices(ObjectId o, std::size_t idx, double prob) {
    const Opf* opf = instance_.GetOpf(o);
    std::vector<OpfEntry> choices;
    if (options_.include_zero_probability_worlds) {
      auto pc = PotentialChildSets(weak_, o, options_.max_worlds);
      if (!pc.ok()) {
        status_ = pc.status();
        return;
      }
      for (IdSet& c : *pc) {
        double p = opf != nullptr ? opf->Prob(c) : 0.0;
        choices.push_back(OpfEntry{std::move(c), p});
      }
    } else {
      if (opf == nullptr) {
        status_ = Status::FailedPrecondition(
            StrCat("non-leaf '", weak_.dict().ObjectName(o),
                   "' has no OPF"));
        return;
      }
      for (OpfEntry& e : opf->Entries()) {
        if (e.prob > 0.0) choices.push_back(std::move(e));
      }
    }
    for (const OpfEntry& choice : choices) {
      chosen_set_[o] = choice.child_set;
      for (ObjectId c : choice.child_set) ++include_count_[c];
      Recurse(idx + 1, prob * choice.prob);
      for (ObjectId c : choice.child_set) --include_count_[c];
      chosen_set_[o].reset();
      if (!status_.ok()) return;
    }
  }

  void EnumerateValueChoices(ObjectId o, std::size_t idx, double prob) {
    auto type = weak_.TypeOf(o);
    if (!type.has_value()) {
      // A typeless leaf (e.g. in a projection result) carries no value and
      // contributes no factor.
      Recurse(idx + 1, prob);
      return;
    }
    const Vpf* vpf = instance_.GetVpf(o);
    if (vpf == nullptr && !options_.include_zero_probability_worlds) {
      status_ = Status::FailedPrecondition(
          StrCat("leaf '", weak_.dict().ObjectName(o), "' has no VPF"));
      return;
    }
    for (const Value& v : weak_.dict().TypeDomain(*type)) {
      double p = vpf != nullptr ? vpf->Prob(v) : 0.0;
      if (p <= 0.0 && !options_.include_zero_probability_worlds) continue;
      chosen_value_[o] = v;
      Recurse(idx + 1, prob * p);
      chosen_value_[o].reset();
      if (!status_.ok()) return;
    }
  }

  void Emit(double prob) {
    if (worlds_.size() >= options_.max_worlds) {
      status_ = Status::InvalidArgument(
          StrCat("world enumeration exceeds cap of ", options_.max_worlds));
      return;
    }
    SemistructuredInstance world;
    world.SetDictionary(weak_.dict());
    for (ObjectId o : order_) {
      if (!Included(o)) continue;
      Status s = world.AddObjectById(o);
      if (!s.ok()) {
        status_ = s;
        return;
      }
    }
    Status s = world.SetRoot(weak_.root());
    if (!s.ok()) {
      status_ = s;
      return;
    }
    for (ObjectId o : order_) {
      if (!Included(o)) continue;
      if (chosen_set_[o].has_value()) {
        for (ObjectId c : *chosen_set_[o]) {
          auto label = weak_.ChildLabel(o, c);
          if (!label.has_value()) {
            status_ = Status::Internal("chosen child has no lch label");
            return;
          }
          s = world.AddEdge(o, *label, c);
          if (!s.ok()) {
            status_ = s;
            return;
          }
        }
      } else if (chosen_value_[o].has_value()) {
        s = world.SetLeafValue(o, *weak_.TypeOf(o), *chosen_value_[o]);
        if (!s.ok()) {
          status_ = s;
          return;
        }
      }
    }
    worlds_.push_back(World{std::move(world), prob});
    if (top_k_ != 0 && worlds_.size() >= 2 * top_k_ + 16) {
      // Trim to the current top k to keep PruneThreshold sharp and the
      // working set small.
      std::sort(worlds_.begin(), worlds_.end(),
                [](const World& a, const World& b) {
                  return a.prob > b.prob;
                });
      worlds_.resize(top_k_);
    }
  }

  const ProbabilisticInstance& instance_;
  const WeakInstance& weak_;
  const EnumerationOptions& options_;
  std::vector<ObjectId> order_;
  std::vector<std::uint32_t> include_count_;
  std::vector<std::optional<IdSet>> chosen_set_;
  std::vector<std::optional<Value>> chosen_value_;
  std::vector<World> worlds_;
  Status status_;
  std::size_t top_k_ = 0;  // 0 = plain enumeration
};

}  // namespace

Result<std::vector<World>> EnumerateWorlds(
    const ProbabilisticInstance& instance,
    const EnumerationOptions& options) {
  const WeakInstance& weak = instance.weak();
  if (!weak.HasRoot()) {
    return Status::FailedPrecondition("weak instance has no root");
  }
  PXML_ASSIGN_OR_RETURN(SemistructuredInstance graph,
                        WeakInstanceGraph(weak));
  PXML_ASSIGN_OR_RETURN(std::vector<ObjectId> order,
                        TopologicalOrder(graph));
  WorldEnumerator enumerator(instance, options, std::move(order));
  return enumerator.Run();
}

Result<std::vector<World>> MostProbableWorlds(
    const ProbabilisticInstance& instance, std::size_t k,
    const EnumerationOptions& options) {
  if (k == 0) {
    return Status::InvalidArgument("k must be positive");
  }
  const WeakInstance& weak = instance.weak();
  if (!weak.HasRoot()) {
    return Status::FailedPrecondition("weak instance has no root");
  }
  PXML_ASSIGN_OR_RETURN(SemistructuredInstance graph,
                        WeakInstanceGraph(weak));
  PXML_ASSIGN_OR_RETURN(std::vector<ObjectId> order,
                        TopologicalOrder(graph));
  WorldEnumerator enumerator(instance, options, std::move(order));
  return enumerator.RunTopK(k);
}

Status CheckCompatible(const WeakInstance& weak,
                       const SemistructuredInstance& world) {
  if (!weak.HasRoot() || !world.HasRoot() ||
      world.root() != weak.root()) {
    return Status::FailedPrecondition(
        "world root does not match weak instance root");
  }
  if (ReachableFrom(world, world.root()).size() != world.num_objects()) {
    return Status::FailedPrecondition(
        "world has objects unreachable from the root");
  }
  const Dictionary& dict = weak.dict();
  for (ObjectId o : world.Objects()) {
    if (!weak.Present(o)) {
      return Status::FailedPrecondition(
          StrCat("world object id ", o, " not in the weak instance"));
    }
    if (weak.IsLeaf(o)) {
      if (!world.IsLeaf(o)) {
        return Status::FailedPrecondition(
            StrCat("'", dict.ObjectName(o),
                   "' is a leaf of W but has children in the world"));
      }
      auto wtype = weak.TypeOf(o);
      if (wtype.has_value()) {
        auto stype = world.TypeOf(o);
        auto sval = world.ValueOf(o);
        if (!stype.has_value() || *stype != *wtype) {
          return Status::FailedPrecondition(
              StrCat("leaf '", dict.ObjectName(o),
                     "' type mismatch with W"));
        }
        if (!sval.has_value() || !dict.DomainContains(*wtype, *sval)) {
          return Status::FailedPrecondition(
              StrCat("leaf '", dict.ObjectName(o),
                     "' value missing or outside dom(tau)"));
        }
      }
      continue;
    }
    // Non-leaf of W: every edge must be lch-sanctioned with the right
    // label, and per-label counts must satisfy card.
    for (const Edge& e : world.Children(o)) {
      if (!weak.Lch(o, e.label).Contains(e.child)) {
        return Status::FailedPrecondition(StrCat(
            "edge (", dict.ObjectName(o), ",", dict.ObjectName(e.child),
            ") with label '", dict.LabelName(e.label),
            "' is not sanctioned by lch"));
      }
    }
    for (LabelId l : weak.LabelsOf(o)) {
      std::uint32_t k =
          static_cast<std::uint32_t>(world.LabeledChildren(o, l).size());
      if (!weak.Card(o, l).Contains(k)) {
        return Status::FailedPrecondition(StrCat(
            "object '", dict.ObjectName(o), "' has ", k, " children with '",
            dict.LabelName(l), "', outside card ",
            weak.Card(o, l).ToString()));
      }
    }
  }
  return Status::Ok();
}

Result<double> WorldProbability(const ProbabilisticInstance& instance,
                                const SemistructuredInstance& world) {
  const WeakInstance& weak = instance.weak();
  PXML_RETURN_IF_ERROR(CheckCompatible(weak, world));
  double prob = 1.0;
  for (ObjectId o : world.Objects()) {
    if (!weak.IsLeaf(o)) {
      const Opf* opf = instance.GetOpf(o);
      if (opf == nullptr) {
        return Status::FailedPrecondition(
            StrCat("non-leaf '", weak.dict().ObjectName(o),
                   "' has no OPF"));
      }
      std::vector<std::uint32_t> kids;
      for (const Edge& e : world.Children(o)) kids.push_back(e.child);
      prob *= opf->Prob(IdSet(std::move(kids)));
    } else if (weak.TypeOf(o).has_value()) {
      const Vpf* vpf = instance.GetVpf(o);
      if (vpf == nullptr) {
        return Status::FailedPrecondition(
            StrCat("leaf '", weak.dict().ObjectName(o), "' has no VPF"));
      }
      prob *= vpf->Prob(*world.ValueOf(o));
    }
  }
  return prob;
}

}  // namespace pxml
