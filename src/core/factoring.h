#ifndef PXML_CORE_FACTORING_H_
#define PXML_CORE_FACTORING_H_

#include <vector>

#include "core/probabilistic_instance.h"
#include "core/semantics.h"
#include "util/status.h"

namespace pxml {

/// Theorem 2 constructively: given a weak instance W and a global
/// interpretation P (as a list of worlds with probabilities covering all
/// positive-mass worlds and summing to ~1), builds the local
/// interpretation with
///
///   ℘(o)(c) = P(c_S(o) = c | o in S)
///
/// for non-leaves (VPFs analogously for leaves). Objects never occurring
/// with positive probability get a point OPF on an arbitrary member of
/// PC(o) — any choice leaves P_℘ unchanged on positive-mass worlds.
Result<ProbabilisticInstance> FactorGlobalInterpretation(
    const WeakInstance& weak, const std::vector<World>& global);

/// Decides whether `global` satisfies W (Def 4.5), i.e. factors through a
/// local interpretation: factors it with FactorGlobalInterpretation and
/// checks P_℘(S) == P(S) on every listed world. (Equivalent to the
/// conditional-independence definition for distributions over Domain(W).)
Result<bool> GlobalSatisfiesWeakInstance(const WeakInstance& weak,
                                         const std::vector<World>& global);

}  // namespace pxml

#endif  // PXML_CORE_FACTORING_H_
