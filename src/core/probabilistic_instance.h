#ifndef PXML_CORE_PROBABILISTIC_INSTANCE_H_
#define PXML_CORE_PROBABILISTIC_INSTANCE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/weak_instance.h"
#include "prob/opf.h"
#include "prob/vpf.h"
#include "util/status.h"

namespace pxml {

/// A probabilistic instance I = (V, lch, tau, val, card, ℘) (Def 3.11):
/// a weak instance plus a local interpretation ℘ assigning every non-leaf
/// object an OPF over PC(o) and every leaf object a VPF over dom(tau(o)).
///
/// Copyable with a copy-on-write local interpretation: ℘ entries are
/// immutable once installed (the Opf interface is fully const), so a
/// copy shares them by reference and only the per-object pointer arrays
/// and the weak structure are duplicated. SetOpf/SetVpf *replace* the
/// shared pointer — they never mutate the pointee — so copies stay
/// isolated. This is what makes a MutationGuard's private working copy
/// (and the benchmark's "copy the input instance" phase) cheap on large
/// interpretations.
///
/// Versioning (for the ε-memo cache, DESIGN.md §8): every mutation that
/// goes through this API bumps a monotone version counter, and each
/// SetOpf/SetVpf additionally stamps the changed object *and all of its
/// potential ancestors* with the new version (per-object dirty tracking —
/// O(depth) per update on a tree). A cached per-subtree result recorded
/// at version V for object o is still valid iff SubtreeChangeVersion(o)
/// <= V. Structural edits obtained through the non-const weak() accessor
/// cannot be tracked per object, so they conservatively bump a separate
/// structure_version() that invalidates whole caches.
class ProbabilisticInstance {
 public:
  ProbabilisticInstance() = default;

  ProbabilisticInstance(const ProbabilisticInstance& other);
  ProbabilisticInstance& operator=(const ProbabilisticInstance& other);
  ProbabilisticInstance(ProbabilisticInstance&&) = default;
  ProbabilisticInstance& operator=(ProbabilisticInstance&&) = default;

  /// Non-const structural access: hands out the weak instance for
  /// construction/surgery, so it conservatively marks the structure (and
  /// thus every cache keyed on it) dirty.
  WeakInstance& weak() {
    ++version_;
    ++structure_version_;
    return weak_;
  }
  const WeakInstance& weak() const { return weak_; }

  Dictionary& dict() { return weak_.dict(); }
  const Dictionary& dict() const { return weak_.dict(); }

  /// Installs ℘(o) for a non-leaf object. The OPF's support is *not*
  /// validated here (see ValidateProbabilisticInstance).
  Status SetOpf(ObjectId o, std::unique_ptr<Opf> opf);

  /// Installs ℘(o) for a leaf object.
  Status SetVpf(ObjectId o, Vpf vpf);

  /// ℘(o) as an OPF; nullptr if none installed.
  const Opf* GetOpf(ObjectId o) const;
  /// ℘(o) as a VPF; nullptr if none installed.
  const Vpf* GetVpf(ObjectId o) const;

  /// Replaces ℘(o) for a non-leaf (same as SetOpf; reads as an update).
  Status ReplaceOpf(ObjectId o, std::unique_ptr<Opf> opf) {
    return SetOpf(o, std::move(opf));
  }

  /// Total number of OPF rows across all objects (the "number of entries
  /// in a local interpretation" the paper's experiments count).
  std::size_t TotalOpfEntries() const;

  /// Monotone mutation counter: bumped by every SetOpf/SetVpf and every
  /// non-const weak() access. Two equal versions mean "no mutation went
  /// through this API in between".
  std::uint64_t version() const { return version_; }

  /// Bumped whenever the weak structure may have changed (non-const
  /// weak() access). ℘-only updates (SetOpf/SetVpf) leave it untouched.
  std::uint64_t structure_version() const { return structure_version_; }

  /// The version at which ℘ last changed anywhere in the potential
  /// subtree rooted at o (o itself included); 0 if never.
  std::uint64_t SubtreeChangeVersion(ObjectId o) const {
    return o < subtree_change_.size() ? subtree_change_[o] : 0;
  }

  /// Multi-line human-readable rendering.
  std::string ToString() const;

 private:
  WeakInstance weak_;
  // ℘ storage, indexed by ObjectId. Entries are shared-immutable: copies
  // of the instance alias them, and updates swap the pointer.
  std::vector<std::shared_ptr<const Opf>> opfs_;
  std::vector<std::shared_ptr<const Vpf>> vpfs_;

  std::uint64_t version_ = 0;
  std::uint64_t structure_version_ = 0;
  // subtree_change_[o] = version of the latest SetOpf/SetVpf at o or any
  // of its potential descendants (maintained by an ancestor walk on set).
  std::vector<std::uint64_t> subtree_change_;

  void EnsureSize(ObjectId o);
  /// Stamps o and all its potential ancestors with a fresh version.
  void NoteLocalChange(ObjectId o);
};

}  // namespace pxml

#endif  // PXML_CORE_PROBABILISTIC_INSTANCE_H_
