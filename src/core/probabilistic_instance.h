#ifndef PXML_CORE_PROBABILISTIC_INSTANCE_H_
#define PXML_CORE_PROBABILISTIC_INSTANCE_H_

#include <memory>
#include <string>
#include <vector>

#include "core/weak_instance.h"
#include "prob/opf.h"
#include "prob/vpf.h"
#include "util/status.h"

namespace pxml {

/// A probabilistic instance I = (V, lch, tau, val, card, ℘) (Def 3.11):
/// a weak instance plus a local interpretation ℘ assigning every non-leaf
/// object an OPF over PC(o) and every leaf object a VPF over dom(tau(o)).
///
/// Deep-copyable: copying clones every OPF (the benchmark's "copy the
/// input instance" phase exercises exactly this).
class ProbabilisticInstance {
 public:
  ProbabilisticInstance() = default;

  ProbabilisticInstance(const ProbabilisticInstance& other);
  ProbabilisticInstance& operator=(const ProbabilisticInstance& other);
  ProbabilisticInstance(ProbabilisticInstance&&) = default;
  ProbabilisticInstance& operator=(ProbabilisticInstance&&) = default;

  WeakInstance& weak() { return weak_; }
  const WeakInstance& weak() const { return weak_; }

  Dictionary& dict() { return weak_.dict(); }
  const Dictionary& dict() const { return weak_.dict(); }

  /// Installs ℘(o) for a non-leaf object. The OPF's support is *not*
  /// validated here (see ValidateProbabilisticInstance).
  Status SetOpf(ObjectId o, std::unique_ptr<Opf> opf);

  /// Installs ℘(o) for a leaf object.
  Status SetVpf(ObjectId o, Vpf vpf);

  /// ℘(o) as an OPF; nullptr if none installed.
  const Opf* GetOpf(ObjectId o) const;
  /// ℘(o) as a VPF; nullptr if none installed.
  const Vpf* GetVpf(ObjectId o) const;

  /// Replaces ℘(o) for a non-leaf (same as SetOpf; reads as an update).
  Status ReplaceOpf(ObjectId o, std::unique_ptr<Opf> opf) {
    return SetOpf(o, std::move(opf));
  }

  /// Total number of OPF rows across all objects (the "number of entries
  /// in a local interpretation" the paper's experiments count).
  std::size_t TotalOpfEntries() const;

  /// Multi-line human-readable rendering.
  std::string ToString() const;

 private:
  WeakInstance weak_;
  std::vector<std::unique_ptr<Opf>> opfs_;  // indexed by ObjectId
  std::vector<std::unique_ptr<Vpf>> vpfs_;  // indexed by ObjectId

  void EnsureSize(ObjectId o);
};

}  // namespace pxml

#endif  // PXML_CORE_PROBABILISTIC_INSTANCE_H_
