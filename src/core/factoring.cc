#include "core/factoring.h"

#include <unordered_map>

#include "core/potential_children.h"
#include "prob/distribution.h"
#include "util/strings.h"

namespace pxml {

Result<ProbabilisticInstance> FactorGlobalInterpretation(
    const WeakInstance& weak, const std::vector<World>& global) {
  ProbabilisticInstance out;
  out.weak() = weak;

  for (ObjectId o : weak.Objects()) {
    double occur_mass = 0.0;
    if (!weak.IsLeaf(o)) {
      std::unordered_map<IdSet, double, IdSetHash> mass;
      for (const World& w : global) {
        if (!w.instance.Present(o)) continue;
        PXML_RETURN_IF_ERROR(CheckCompatible(weak, w.instance));
        occur_mass += w.prob;
        std::vector<std::uint32_t> kids;
        for (const Edge& e : w.instance.Children(o)) kids.push_back(e.child);
        mass[IdSet(std::move(kids))] += w.prob;
      }
      auto opf = std::make_unique<ExplicitOpf>();
      if (occur_mass > kProbEps) {
        for (const auto& [c, m] : mass) opf->Set(c, m / occur_mass);
      } else {
        // o never occurs: any distribution over PC(o) works; pick a point
        // mass on the canonically-first potential child set.
        PXML_ASSIGN_OR_RETURN(std::vector<IdSet> pc,
                              PotentialChildSets(weak, o));
        if (pc.empty()) {
          return Status::FailedPrecondition(
              StrCat("PC(", weak.dict().ObjectName(o), ") is empty"));
        }
        opf->Set(pc.front(), 1.0);
      }
      PXML_RETURN_IF_ERROR(out.SetOpf(o, std::move(opf)));
    } else if (weak.TypeOf(o).has_value()) {
      Vpf vpf;
      std::unordered_map<Value, double, ValueHash> mass;
      for (const World& w : global) {
        if (!w.instance.Present(o)) continue;
        occur_mass += w.prob;
        auto v = w.instance.ValueOf(o);
        if (!v.has_value()) {
          return Status::FailedPrecondition(
              StrCat("leaf '", weak.dict().ObjectName(o),
                     "' occurs without a value"));
        }
        mass[*v] += w.prob;
      }
      if (occur_mass > kProbEps) {
        for (const auto& [v, m] : mass) vpf.Set(v, m / occur_mass);
      } else {
        vpf.Set(weak.dict().TypeDomain(*weak.TypeOf(o)).front(), 1.0);
      }
      PXML_RETURN_IF_ERROR(out.SetVpf(o, std::move(vpf)));
    }
  }
  return out;
}

Result<bool> GlobalSatisfiesWeakInstance(const WeakInstance& weak,
                                         const std::vector<World>& global) {
  PXML_ASSIGN_OR_RETURN(ProbabilisticInstance local,
                        FactorGlobalInterpretation(weak, global));
  for (const World& w : global) {
    PXML_ASSIGN_OR_RETURN(double p, WorldProbability(local, w.instance));
    if (!ProbNear(p, w.prob)) return false;
  }
  return true;
}

}  // namespace pxml
