#include "core/potential_children.h"

#include <algorithm>

#include "util/strings.h"

namespace pxml {

namespace {

/// Appends to `out` every size-k subset of `universe` for k in
/// [interval.min, min(interval.max, |universe|)], respecting `max_sets`.
Status EnumerateSubsets(const IdSet& universe, const IntInterval& interval,
                        std::size_t max_sets, std::vector<IdSet>* out) {
  const std::vector<std::uint32_t>& ids = universe.ids();
  std::size_t n = ids.size();
  std::size_t lo = interval.min();
  std::size_t hi = std::min<std::size_t>(interval.max(), n);
  if (lo > hi) return Status::Ok();  // no valid subsets
  // Iterative bitmask enumeration for n <= 63; weak instances with more
  // than 63 potential children under one label are outside the cap anyway.
  if (n > 63) {
    return Status::InvalidArgument(
        StrCat("lch set too large to enumerate (", n, " children)"));
  }
  if (lo == 0) {
    out->push_back(IdSet());
  }
  // Enumerate by size to keep a canonical, deterministic order.
  for (std::size_t k = std::max<std::size_t>(lo, 1); k <= hi; ++k) {
    // Standard combination enumeration.
    std::vector<std::size_t> comb(k);
    for (std::size_t i = 0; i < k; ++i) comb[i] = i;
    for (;;) {
      std::vector<std::uint32_t> members(k);
      for (std::size_t i = 0; i < k; ++i) members[i] = ids[comb[i]];
      out->push_back(IdSet(std::move(members)));
      if (out->size() > max_sets) {
        return Status::InvalidArgument(
            StrCat("potential set enumeration exceeds cap of ", max_sets));
      }
      // Advance to the next size-k combination (or move on to k+1).
      std::size_t i = k;
      while (i > 0 && comb[i - 1] == (i - 1) + n - k) --i;
      if (i == 0) break;
      ++comb[i - 1];
      for (std::size_t j = i; j < k; ++j) comb[j] = comb[j - 1] + 1;
    }
  }
  return Status::Ok();
}

}  // namespace

Result<std::vector<IdSet>> PotentialLabelChildSets(const WeakInstance& weak,
                                                   ObjectId o, LabelId l,
                                                   std::size_t max_sets) {
  if (!weak.Present(o)) {
    return Status::NotFound(StrCat("object id ", o, " not present"));
  }
  std::vector<IdSet> out;
  PXML_RETURN_IF_ERROR(
      EnumerateSubsets(weak.Lch(o, l), weak.Card(o, l), max_sets, &out));
  std::sort(out.begin(), out.end());
  return out;
}

Result<std::vector<IdSet>> PotentialChildSets(const WeakInstance& weak,
                                              ObjectId o,
                                              std::size_t max_sets) {
  if (!weak.Present(o)) {
    return Status::NotFound(StrCat("object id ", o, " not present"));
  }
  std::vector<IdSet> acc{IdSet()};
  for (LabelId l : weak.LabelsOf(o)) {
    PXML_ASSIGN_OR_RETURN(std::vector<IdSet> pl,
                          PotentialLabelChildSets(weak, o, l, max_sets));
    if (pl.empty()) return std::vector<IdSet>{};  // PC(o) is empty
    std::vector<IdSet> next;
    if (acc.size() * pl.size() > max_sets) {
      return Status::InvalidArgument(
          StrCat("PC enumeration exceeds cap of ", max_sets));
    }
    next.reserve(acc.size() * pl.size());
    for (const IdSet& a : acc) {
      for (const IdSet& b : pl) next.push_back(a.Union(b));
    }
    acc = std::move(next);
  }
  std::sort(acc.begin(), acc.end());
  acc.erase(std::unique(acc.begin(), acc.end()), acc.end());
  return acc;
}

bool IsPotentialChildSet(const WeakInstance& weak, ObjectId o,
                         const IdSet& c) {
  if (!weak.Present(o)) return false;
  std::size_t covered = 0;
  for (LabelId l : weak.LabelsOf(o)) {
    const IdSet& lch = weak.Lch(o, l);
    IdSet part = c.Intersect(lch);
    covered += part.size();
    if (!weak.Card(o, l).Contains(static_cast<std::uint32_t>(part.size()))) {
      return false;
    }
  }
  // Every member of c must belong to some lch family (families are
  // disjoint, so the parts partition the covered members).
  return covered == c.size();
}

Result<std::size_t> CountPotentialChildSets(const WeakInstance& weak,
                                            ObjectId o) {
  if (!weak.Present(o)) {
    return Status::NotFound(StrCat("object id ", o, " not present"));
  }
  // Product over labels of sum_{k in card} C(|lch|, k).
  long double total = 1.0L;
  for (LabelId l : weak.LabelsOf(o)) {
    std::size_t n = weak.Lch(o, l).size();
    IntInterval card = weak.Card(o, l);
    std::size_t hi = std::min<std::size_t>(card.max(), n);
    long double count = 0.0L;
    // C(n, k) computed incrementally.
    long double binom = 1.0L;
    for (std::size_t k = 0; k <= hi; ++k) {
      if (k >= card.min()) count += binom;
      binom = binom * static_cast<long double>(n - k) /
              static_cast<long double>(k + 1);
    }
    total *= count;
    if (total > 1e18L) {
      return Status::InvalidArgument("PC(o) count overflows");
    }
  }
  return static_cast<std::size_t>(total);
}

}  // namespace pxml
