// Quickstart: build the paper's Figure-2 probabilistic instance, check it,
// enumerate its possible worlds, and reproduce Example 4.1's probability.
//
// Run:  ./quickstart
#include <cstdio>
#include <memory>

#include "core/probabilistic_instance.h"
#include "core/semantics.h"
#include "core/validation.h"
#include "query/point_queries.h"
#include "xml/writer.h"

namespace {

using namespace pxml;  // NOLINT — example brevity

/// Dies with a message on error — examples keep error plumbing minimal.
void Check(const Status& status) {
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
T Unwrap(Result<T> result) {
  Check(result.status());
  return std::move(result).ValueOrDie();
}

/// The probabilistic instance of Figure 2 (T1's VPF reconstructed so that
/// Example 4.1 yields P(S1) = 0.00448).
ProbabilisticInstance BuildFigure2() {
  ProbabilisticInstance inst;
  WeakInstance& weak = inst.weak();
  Dictionary& dict = weak.dict();

  // Objects and labels.
  ObjectId r = weak.AddObject("R");
  ObjectId b1 = weak.AddObject("B1");
  ObjectId b2 = weak.AddObject("B2");
  ObjectId b3 = weak.AddObject("B3");
  ObjectId t1 = weak.AddObject("T1");
  ObjectId t2 = weak.AddObject("T2");
  ObjectId a1 = weak.AddObject("A1");
  ObjectId a2 = weak.AddObject("A2");
  ObjectId a3 = weak.AddObject("A3");
  ObjectId i1 = weak.AddObject("I1");
  ObjectId i2 = weak.AddObject("I2");
  Check(weak.SetRoot(r));
  LabelId book = dict.InternLabel("book");
  LabelId title = dict.InternLabel("title");
  LabelId author = dict.InternLabel("author");
  LabelId institution = dict.InternLabel("institution");

  // lch — who *may* be whose child (Def 3.4).
  Check(weak.AddPotentialChild(r, book, b1));
  Check(weak.AddPotentialChild(r, book, b2));
  Check(weak.AddPotentialChild(r, book, b3));
  Check(weak.AddPotentialChild(b1, title, t1));
  Check(weak.AddPotentialChild(b1, author, a1));
  Check(weak.AddPotentialChild(b1, author, a2));
  Check(weak.AddPotentialChild(b2, author, a1));
  Check(weak.AddPotentialChild(b2, author, a2));
  Check(weak.AddPotentialChild(b2, author, a3));
  Check(weak.AddPotentialChild(b3, title, t2));
  Check(weak.AddPotentialChild(b3, author, a3));
  Check(weak.AddPotentialChild(a1, institution, i1));
  Check(weak.AddPotentialChild(a2, institution, i1));
  Check(weak.AddPotentialChild(a2, institution, i2));
  Check(weak.AddPotentialChild(a3, institution, i2));

  // Cardinality constraints.
  Check(weak.SetCard(r, book, IntInterval(2, 3)));
  Check(weak.SetCard(b1, author, IntInterval(1, 2)));
  Check(weak.SetCard(b1, title, IntInterval(0, 1)));
  Check(weak.SetCard(b2, author, IntInterval(2, 2)));
  Check(weak.SetCard(b3, author, IntInterval(1, 1)));
  Check(weak.SetCard(b3, title, IntInterval(1, 1)));
  Check(weak.SetCard(a1, institution, IntInterval(0, 1)));
  Check(weak.SetCard(a2, institution, IntInterval(1, 1)));
  Check(weak.SetCard(a3, institution, IntInterval(1, 1)));

  // OPFs — distributions over potential child sets (Figure 2's tables).
  auto opf = std::make_unique<ExplicitOpf>();
  opf->Set(IdSet{b1, b2}, 0.2);
  opf->Set(IdSet{b1, b3}, 0.2);
  opf->Set(IdSet{b2, b3}, 0.2);
  opf->Set(IdSet{b1, b2, b3}, 0.4);
  Check(inst.SetOpf(r, std::move(opf)));

  opf = std::make_unique<ExplicitOpf>();
  opf->Set(IdSet{a1}, 0.3);
  opf->Set(IdSet{a1, t1}, 0.35);
  opf->Set(IdSet{a2}, 0.1);
  opf->Set(IdSet{a2, t1}, 0.15);
  opf->Set(IdSet{a1, a2}, 0.05);
  opf->Set(IdSet{a1, a2, t1}, 0.05);
  Check(inst.SetOpf(b1, std::move(opf)));

  opf = std::make_unique<ExplicitOpf>();
  opf->Set(IdSet{a1, a2}, 0.4);
  opf->Set(IdSet{a1, a3}, 0.4);
  opf->Set(IdSet{a2, a3}, 0.2);
  Check(inst.SetOpf(b2, std::move(opf)));

  opf = std::make_unique<ExplicitOpf>();
  opf->Set(IdSet{a3, t2}, 1.0);
  Check(inst.SetOpf(b3, std::move(opf)));

  opf = std::make_unique<ExplicitOpf>();
  opf->Set(IdSet{i1}, 0.8);
  opf->Set(IdSet(), 0.2);
  Check(inst.SetOpf(a1, std::move(opf)));

  opf = std::make_unique<ExplicitOpf>();
  opf->Set(IdSet{i1}, 0.5);
  opf->Set(IdSet{i2}, 0.5);
  Check(inst.SetOpf(a2, std::move(opf)));

  opf = std::make_unique<ExplicitOpf>();
  opf->Set(IdSet{i2}, 1.0);
  Check(inst.SetOpf(a3, std::move(opf)));

  // T1 is a typed leaf with a value distribution.
  TypeId title_type =
      Unwrap(dict.DefineType("title-type", {Value("VQDB"), Value("Lore")}));
  Check(weak.SetLeafType(t1, title_type));
  Vpf vpf;
  vpf.Set(Value("VQDB"), 0.4);
  vpf.Set(Value("Lore"), 0.6);
  Check(inst.SetVpf(t1, std::move(vpf)));
  return inst;
}

}  // namespace

int main() {
  ProbabilisticInstance inst = BuildFigure2();
  Check(ValidateProbabilisticInstance(inst));
  std::printf("Figure 2 instance: %zu objects, %zu OPF rows\n",
              inst.weak().num_objects(), inst.TotalOpfEntries());

  // Global semantics: enumerate all compatible worlds (Theorem 1 says
  // their probabilities sum to 1).
  std::vector<World> worlds = Unwrap(EnumerateWorlds(inst));
  double mass = 0;
  for (const World& w : worlds) mass += w.prob;
  std::printf("possible worlds: %zu (total probability %.6f)\n",
              worlds.size(), mass);

  // Example 4.1: the probability of the particular world S1.
  const Dictionary& dict = inst.dict();
  SemistructuredInstance s1;
  s1.SetDictionary(dict);
  for (const char* name : {"R", "B1", "B2", "T1", "A1", "A2", "I1"}) {
    Check(s1.AddObjectById(*dict.FindObject(name)));
  }
  Check(s1.SetRoot(*dict.FindObject("R")));
  auto edge = [&](const char* a, const char* l, const char* b) {
    Check(s1.AddEdge(*dict.FindObject(a), *dict.FindLabel(l),
                     *dict.FindObject(b)));
  };
  edge("R", "book", "B1");
  edge("R", "book", "B2");
  edge("B1", "author", "A1");
  edge("B1", "title", "T1");
  edge("B2", "author", "A1");
  edge("B2", "author", "A2");
  edge("A1", "institution", "I1");
  edge("A2", "institution", "I1");
  Check(s1.SetLeafValue(*dict.FindObject("T1"), *dict.FindType("title-type"),
                        Value("VQDB")));
  double p_s1 = Unwrap(WorldProbability(inst, s1));
  std::printf("P(S1) = %.5f   (Example 4.1 reports 0.00448)\n", p_s1);

  // A point query on the DAG route: via world enumeration.
  PathExpression p;
  p.start = inst.weak().root();
  p.labels = {*dict.FindLabel("book"), *dict.FindLabel("author")};
  double p_a1 = Unwrap(PointQueryViaWorlds(inst, p, *dict.FindObject("A1")));
  std::printf("P(A1 in R.book.author) = %.5f\n", p_a1);

  // Persist the instance in the PXML text format.
  std::string serialized = SerializePxml(inst);
  std::printf("serialized instance: %zu bytes of PXML text\n",
              serialized.size());
  return 0;
}
