// The interval-probability extension (the companion "Probabilistic
// Interval XML" direction the paper cites): when an extraction pipeline
// can only bound its confidences, the instance carries probability
// intervals, queries return intervals, and every conventional (point)
// instance inside the bounds is guaranteed to fall within them.
//
// Run:  ./interval_bounds
#include <cstdio>
#include <memory>

#include "core/probabilistic_instance.h"
#include "interval/interval_model.h"
#include "interval/interval_queries.h"
#include "query/point_queries.h"
#include "util/rng.h"

namespace {

using namespace pxml;  // NOLINT — example brevity

void Check(const Status& status) {
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
T Unwrap(Result<T> result) {
  Check(result.status());
  return std::move(result).ValueOrDie();
}

/// A small extraction result: R --paper--> P --author--> A.
ProbabilisticInstance BuildPointInstance() {
  ProbabilisticInstance inst;
  WeakInstance& weak = inst.weak();
  ObjectId r = weak.AddObject("R");
  ObjectId p = weak.AddObject("P");
  ObjectId a = weak.AddObject("A");
  Check(weak.SetRoot(r));
  LabelId paper = weak.dict().InternLabel("paper");
  LabelId author = weak.dict().InternLabel("author");
  Check(weak.AddPotentialChild(r, paper, p));
  Check(weak.AddPotentialChild(p, author, a));
  auto r_opf = std::make_unique<ExplicitOpf>();
  r_opf->Set(IdSet{p}, 0.7);
  r_opf->Set(IdSet(), 0.3);
  Check(inst.SetOpf(r, std::move(r_opf)));
  auto p_opf = std::make_unique<ExplicitOpf>();
  p_opf->Set(IdSet{a}, 0.6);
  p_opf->Set(IdSet(), 0.4);
  Check(inst.SetOpf(p, std::move(p_opf)));
  return inst;
}

}  // namespace

int main() {
  ProbabilisticInstance point = BuildPointInstance();
  const Dictionary& dict = point.dict();
  PathExpression path;
  path.start = point.weak().root();
  path.labels = {*dict.FindLabel("paper"), *dict.FindLabel("author")};
  ObjectId a = *dict.FindObject("A");

  double exact = Unwrap(PointQuery(point, path, a));
  std::printf("point instance:    P(A in R.paper.author) = %.4f\n", exact);

  // The extractor is only confident to within ±0.1 per table row.
  IntervalInstance interval =
      Unwrap(IntervalInstance::Widen(point, 0.1));
  Check(ValidateIntervalInstance(interval));
  IntervalProb bounds = Unwrap(IntervalPointQuery(interval, path, a));
  std::printf("interval instance: P(A in R.paper.author) in %s\n",
              bounds.ToString().c_str());

  // Every point instance inside the bounds stays inside the answer.
  Rng rng(2003);
  std::printf("\nsampled point instances within the bounds:\n");
  for (int i = 0; i < 5; ++i) {
    ProbabilisticInstance sampled =
        Unwrap(interval.SamplePointInstance(rng));
    double p = Unwrap(PointQuery(sampled, path, a));
    std::printf("  sample %d: P = %.4f  (inside: %s)\n", i, p,
                bounds.Contains(p) ? "yes" : "NO");
  }

  // Interval tables can also be tightened by mutual consistency.
  IntervalOpf loose;
  ObjectId pid = *dict.FindObject("P");
  loose.Set(IdSet{pid}, IntervalProb(0.1, 0.95));
  loose.Set(IdSet(), IntervalProb(0.3, 0.5));
  Check(loose.Tighten());
  std::printf("\ntightening [0.1,0.95]/[0.3,0.5] gives %s/%s\n",
              loose.Get(IdSet{pid}).ToString().c_str(),
              loose.Get(IdSet()).ToString().c_str());
  return 0;
}
