// A small command-line tool over the PXML library:
//
//   query_tool <file.pxml> "<query>" ...   run queries against a stored
//                                          instance (see query syntax in
//                                          query/parser.h)
//   query_tool --demo                      generate a random instance,
//                                          write demo.pxml, and run a few
//                                          queries against it
//
// Example:
//   ./query_tool --demo
//   ./query_tool demo.pxml "prob exists r.L0_0.L1_0.L2_1"
#include <cstdio>
#include <cstring>
#include <string>

#include "core/validation.h"
#include "query/parser.h"
#include "util/rng.h"
#include "workload/generator.h"
#include "workload/query_generator.h"
#include "xml/parser.h"
#include "xml/writer.h"

namespace {

using namespace pxml;  // NOLINT — example brevity

int Die(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

int RunQuery(const ProbabilisticInstance& inst, const std::string& text) {
  auto query = ParseQuery(inst.dict(), text);
  if (!query.ok()) return Die(query.status());
  auto out = ExecuteQuery(inst, *query);
  if (!out.ok()) return Die(out.status());
  if (out->probability.has_value()) {
    std::printf("%s\n  = %.9f\n", text.c_str(), *out->probability);
  } else {
    std::printf("%s\n  = instance with %zu objects, %zu OPF rows:\n%s",
                text.c_str(), out->instance->weak().num_objects(),
                out->instance->TotalOpfEntries(),
                SerializePxml(*out->instance).c_str());
  }
  return 0;
}

int RunDemo() {
  GeneratorConfig config;
  config.depth = 3;
  config.branching = 3;
  config.labeling = LabelingScheme::kFullyRandom;
  config.seed = 2026;
  auto inst = GenerateBalancedTree(config);
  if (!inst.ok()) return Die(inst.status());
  Status written = WritePxmlFile(*inst, "demo.pxml");
  if (!written.ok()) return Die(written);
  std::printf("wrote demo.pxml (%zu objects, %zu OPF rows)\n\n",
              inst->weak().num_objects(), inst->TotalOpfEntries());

  Rng rng(7);
  for (int i = 0; i < 3; ++i) {
    auto cond = GenerateObjectSelection(*inst, rng);
    if (!cond.ok()) return Die(cond.status());
    std::string path = cond->path.ToString(inst->dict());
    RunQuery(*inst, "prob exists " + path);
    RunQuery(*inst, "prob " + cond->ToString(inst->dict()));
  }
  auto cond = GenerateObjectSelection(*inst, rng);
  if (!cond.ok()) return Die(cond.status());
  std::printf("\nprojecting: project %s\n",
              cond->path.ToString(inst->dict()).c_str());
  auto q = ParseQuery(inst->dict(),
                      "project " + cond->path.ToString(inst->dict()));
  if (!q.ok()) return Die(q.status());
  auto out = ExecuteQuery(*inst, *q);
  if (!out.ok()) return Die(out.status());
  std::printf("  -> %zu objects (from %zu)\n",
              out->instance->weak().num_objects(),
              inst->weak().num_objects());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 2 && std::strcmp(argv[1], "--demo") == 0) {
    return RunDemo();
  }
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: %s <file.pxml> \"<query>\" ...\n"
                 "       %s --demo\n",
                 argv[0], argv[0]);
    return 2;
  }
  auto inst = ReadPxmlFile(argv[1]);
  if (!inst.ok()) return Die(inst.status());
  Status valid = ValidateProbabilisticInstance(*inst);
  if (!valid.ok()) return Die(valid);
  for (int i = 2; i < argc; ++i) {
    int rc = RunQuery(*inst, argv[i]);
    if (rc != 0) return rc;
  }
  return 0;
}
