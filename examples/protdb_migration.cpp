// Migrating a ProTDB probabilistic tree into PXML (the Section-8
// subsumption, constructively): the same document is embedded under all
// three OPF representations; queries agree, footprints differ.
//
// Run:  ./protdb_migration
#include <cstdio>

#include "core/validation.h"
#include "protdb/conversion.h"
#include "protdb/protdb.h"
#include "query/parser.h"
#include "query/point_queries.h"
#include "util/strings.h"

namespace {

using namespace pxml;  // NOLINT — example brevity

void Check(const Status& status) {
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
T Unwrap(Result<T> result) {
  Check(result.status());
  return std::move(result).ValueOrDie();
}

const char* RepName(OpfRepresentation rep) {
  switch (rep) {
    case OpfRepresentation::kExplicit:
      return "explicit";
    case OpfRepresentation::kIndependent:
      return "independent";
    case OpfRepresentation::kPerLabel:
      return "per-label";
  }
  return "?";
}

}  // namespace

int main() {
  // A ProTDB-style extraction of a small digital library: each node
  // carries an independent existence probability given its parent.
  ProtdbDocument doc;
  ObjectId root = Unwrap(doc.CreateRoot("library"));
  ObjectId paper1 = Unwrap(doc.AddChild(root, "paper", "p_lore", 0.95));
  ObjectId paper2 = Unwrap(doc.AddChild(root, "paper", "p_vqdb", 0.6));
  ObjectId survey = Unwrap(doc.AddChild(root, "survey", "s_xml", 0.3));
  for (int i = 0; i < 6; ++i) {
    Check(doc.AddChild(paper1, "author", StrCat("a", i), 0.5 + 0.05 * i)
              .status());
  }
  ObjectId year = Unwrap(doc.AddChild(paper2, "year", "y_vqdb", 1.0));
  Check(doc.SetLeafValue(year, "year", Value(std::int64_t{1996})));
  ObjectId sy = Unwrap(doc.AddChild(survey, "year", "y_xml", 1.0));
  Check(doc.SetLeafValue(sy, "year", Value(std::int64_t{2001})));

  std::printf("ProTDB document: %zu nodes\n", doc.num_nodes());
  std::printf("ProTDB P(a3 exists) = %.4f\n\n",
              Unwrap(doc.ExistenceProbability(*doc.dict().FindObject("a3"))));

  for (OpfRepresentation rep :
       {OpfRepresentation::kExplicit, OpfRepresentation::kIndependent,
        OpfRepresentation::kPerLabel}) {
    ProbabilisticInstance inst = Unwrap(FromProtdb(doc, rep));
    Check(ValidateProbabilisticInstance(inst));
    // Equivalent-table size vs native footprint.
    std::size_t table_rows = inst.TotalOpfEntries();
    Query q = Unwrap(
        ParseQuery(inst.dict(), "prob library.paper.author = a3"));
    QueryOutput out = Unwrap(ExecuteQuery(inst, q));
    std::printf("%-12s: equivalent OPF rows %6zu | P(a3) = %.4f\n",
                RepName(rep), table_rows, *out.probability);
  }

  std::printf(
      "\nAll three representations answer identically — ProTDB is the\n"
      "independent special case of PXML (paper, Section 8). The explicit\n"
      "table pays 2^children rows for what the compact forms store in\n"
      "O(children).\n");
  return 0;
}
