// The four motivating scenarios of the paper's Section 2, end to end, on
// a tree-shaped bibliographic instance, using the query language and the
// efficient Section-6 operators.
//
// Run:  ./bibliography
#include <cstdio>
#include <memory>

#include "algebra/cartesian_product.h"
#include "core/probabilistic_instance.h"
#include "core/validation.h"
#include "query/parser.h"
#include "query/point_queries.h"
#include "xml/writer.h"

namespace {

using namespace pxml;  // NOLINT — example brevity

void Check(const Status& status) {
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
T Unwrap(Result<T> result) {
  Check(result.status());
  return std::move(result).ValueOrDie();
}

/// A citation index over one research area, built as if by an extraction
/// pipeline that is unsure which books/authors it really saw.
ProbabilisticInstance BuildIndex(const char* suffix, std::uint64_t flavor) {
  ProbabilisticInstance inst;
  WeakInstance& weak = inst.weak();
  Dictionary& dict = weak.dict();
  auto name = [&](const char* base) { return std::string(base) + suffix; };

  ObjectId r = weak.AddObject(name("R"));
  ObjectId b1 = weak.AddObject(name("B1"));
  ObjectId b2 = weak.AddObject(name("B2"));
  ObjectId t1 = weak.AddObject(name("T1"));
  ObjectId a1 = weak.AddObject(name("A1"));
  ObjectId a2 = weak.AddObject(name("A2"));
  ObjectId a3 = weak.AddObject(name("A3"));
  Check(weak.SetRoot(r));
  LabelId book = dict.InternLabel("book");
  LabelId title = dict.InternLabel("title");
  LabelId author = dict.InternLabel("author");

  Check(weak.AddPotentialChild(r, book, b1));
  Check(weak.AddPotentialChild(r, book, b2));
  Check(weak.AddPotentialChild(b1, title, t1));
  Check(weak.AddPotentialChild(b1, author, a1));
  Check(weak.AddPotentialChild(b1, author, a2));
  Check(weak.AddPotentialChild(b2, author, a3));
  Check(weak.SetCard(r, book, IntInterval(1, 2)));
  Check(weak.SetCard(b1, author, IntInterval(1, 2)));
  Check(weak.SetCard(b1, title, IntInterval(0, 1)));
  Check(weak.SetCard(b2, author, IntInterval(1, 1)));

  double f = 0.05 * static_cast<double>(flavor % 3);
  auto opf = std::make_unique<ExplicitOpf>();
  opf->Set(IdSet{b1}, 0.3 - f);
  opf->Set(IdSet{b2}, 0.2);
  opf->Set(IdSet{b1, b2}, 0.5 + f);
  Check(inst.SetOpf(r, std::move(opf)));

  opf = std::make_unique<ExplicitOpf>();
  opf->Set(IdSet{a1}, 0.25);
  opf->Set(IdSet{a1, t1}, 0.3);
  opf->Set(IdSet{a2}, 0.1);
  opf->Set(IdSet{a2, t1}, 0.15);
  opf->Set(IdSet{a1, a2}, 0.1);
  opf->Set(IdSet{a1, a2, t1}, 0.1);
  Check(inst.SetOpf(b1, std::move(opf)));

  opf = std::make_unique<ExplicitOpf>();
  opf->Set(IdSet{a3}, 1.0);
  Check(inst.SetOpf(b2, std::move(opf)));

  TypeId title_type = Unwrap(dict.DefineType(
      "title-type", {Value("VQDB"), Value("Lore")}));
  Check(weak.SetLeafType(t1, title_type));
  Vpf vpf;
  vpf.Set(Value("VQDB"), 0.4);
  vpf.Set(Value("Lore"), 0.6);
  Check(inst.SetVpf(t1, std::move(vpf)));
  return inst;
}

void RunAndReport(const ProbabilisticInstance& inst, const char* text) {
  Query q = Unwrap(ParseQuery(inst.dict(), text));
  QueryOutput out = Unwrap(ExecuteQuery(inst, q));
  if (out.probability.has_value()) {
    std::printf("  %-42s -> %.6f\n", text, *out.probability);
  } else {
    std::printf("  %-42s -> instance with %zu objects\n", text,
                out.instance->weak().num_objects());
  }
}

}  // namespace

int main() {
  ProbabilisticInstance inst = BuildIndex("", 0);
  Check(ValidateProbabilisticInstance(inst));

  std::printf("Scenario 1: authors of all books, keeping probabilities\n");
  Query project = Unwrap(ParseQuery(inst.dict(), "project R.book.author"));
  ProbabilisticInstance authors =
      *Unwrap(ExecuteQuery(inst, project)).instance;
  std::printf("  projected instance has %zu objects (from %zu)\n",
              authors.weak().num_objects(), inst.weak().num_objects());
  RunAndReport(authors, "prob R.book.author = A1");

  std::printf("\nScenario 2: now we KNOW book B1 exists\n");
  Query select = Unwrap(ParseQuery(inst.dict(), "select R.book = B1"));
  ProbabilisticInstance updated =
      *Unwrap(ExecuteQuery(inst, select)).instance;
  RunAndReport(inst, "prob R.book = B1");
  RunAndReport(updated, "prob R.book = B1");
  RunAndReport(inst, "prob R.book = B2");
  RunAndReport(updated, "prob R.book = B2");

  std::printf("\nScenario 3: combine two areas into one index\n");
  ProbabilisticInstance other = BuildIndex("_ai", 1);
  ProbabilisticInstance combined =
      Unwrap(CartesianProduct(inst, other, "Bib"));
  Check(ValidateProbabilisticInstance(combined));
  std::printf("  combined instance: %zu objects rooted at 'Bib'\n",
              combined.weak().num_objects());
  RunAndReport(combined, "prob Bib.book = B1");
  RunAndReport(combined, "prob Bib.book = B1_ai");
  RunAndReport(combined, "prob exists Bib.book.title");

  std::printf("\nScenario 4: probability a particular author exists\n");
  RunAndReport(inst, "prob R.book.author = A1");
  RunAndReport(inst, "prob R.book.author = A3");
  RunAndReport(inst, "prob exists R.book.author");
  RunAndReport(inst, "prob val(R.book.title) = \"VQDB\"");

  std::printf("\nThe updated instance of Scenario 2, serialized:\n%s",
              SerializePxml(updated).c_str());
  return 0;
}
