// The Section-3.2 scene-analysis example: an object-recognition system
// watches a scene that may contain a bridge and vehicles it cannot tell
// apart, so the OPF is *symmetric* in the vehicles — a distribution no
// per-child-independence model (ProTDB) can express, but PXML states
// directly.
//
// Run:  ./surveillance
#include <cstdio>
#include <memory>

#include "algebra/selection.h"
#include "bayes/network.h"
#include "core/probabilistic_instance.h"
#include "core/semantics.h"
#include "core/validation.h"
#include "query/point_queries.h"

namespace {

using namespace pxml;  // NOLINT — example brevity

void Check(const Status& status) {
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
T Unwrap(Result<T> result) {
  Check(result.status());
  return std::move(result).ValueOrDie();
}

}  // namespace

int main() {
  ProbabilisticInstance inst;
  WeakInstance& weak = inst.weak();
  Dictionary& dict = weak.dict();

  ObjectId scene = weak.AddObject("S1");
  ObjectId bridge = weak.AddObject("bridge1");
  ObjectId v1 = weak.AddObject("vehicle1");
  ObjectId v2 = weak.AddObject("vehicle2");
  ObjectId kind1 = weak.AddObject("kind1");
  Check(weak.SetRoot(scene));
  LabelId object = dict.InternLabel("object");
  LabelId kind = dict.InternLabel("kind");
  Check(weak.AddPotentialChild(scene, object, bridge));
  Check(weak.AddPotentialChild(scene, object, v1));
  Check(weak.AddPotentialChild(scene, object, v2));
  Check(weak.AddPotentialChild(v1, kind, kind1));
  Check(weak.SetCard(v1, kind, IntInterval(1, 1)));

  // The recognizer is 60% sure it saw "bridge plus exactly one vehicle",
  // and cannot distinguish the vehicles: the two single-vehicle scenes
  // get *equal* probability (the paper's indistinguishability example).
  auto opf = std::make_unique<ExplicitOpf>();
  opf->Set(IdSet{bridge, v1}, 0.3);
  opf->Set(IdSet{bridge, v2}, 0.3);
  opf->Set(IdSet{bridge, v1, v2}, 0.2);
  opf->Set(IdSet{bridge}, 0.1);
  opf->Set(IdSet(), 0.1);
  Check(inst.SetOpf(scene, std::move(opf)));

  auto kind_opf = std::make_unique<ExplicitOpf>();
  kind_opf->Set(IdSet{kind1}, 1.0);
  Check(inst.SetOpf(v1, std::move(kind_opf)));

  TypeId kind_type = Unwrap(
      dict.DefineType("vehicle-kind", {Value("truck"), Value("tank")}));
  Check(weak.SetLeafType(kind1, kind_type));
  Vpf vpf;
  vpf.Set(Value("truck"), 0.7);
  vpf.Set(Value("tank"), 0.3);
  Check(inst.SetVpf(kind1, std::move(vpf)));

  Check(ValidateProbabilisticInstance(inst));
  std::printf("scene model: %zu objects\n", weak.num_objects());
  std::printf("symmetric OPF: P({bridge1,vehicle1}) = P({bridge1,vehicle2})"
              " = 0.3\n\n");

  // Queries via epsilon propagation (the weak instance is a tree).
  PathExpression objects_path;
  objects_path.start = scene;
  objects_path.labels = {object};
  std::printf("P(bridge in scene)   = %.3f\n",
              Unwrap(PointQuery(inst, objects_path, bridge)));
  std::printf("P(vehicle1 in scene) = %.3f\n",
              Unwrap(PointQuery(inst, objects_path, v1)));
  std::printf("P(some object)       = %.3f\n",
              Unwrap(ExistsQuery(inst, objects_path)));

  PathExpression kind_path;
  kind_path.start = scene;
  kind_path.labels = {object, kind};
  std::printf("P(vehicle1 is a tank)= %.3f\n",
              Unwrap(ValueQuery(inst, kind_path, Value("tank"))));

  // Bayesian-network route: joint events the tree pass cannot answer in
  // one sweep.
  BayesNet net = Unwrap(BayesNet::Compile(inst));
  std::printf("P(both vehicles)     = %.3f  (BN joint query)\n",
              Unwrap(net.ProbAllPresent({v1, v2})));

  // Conditioning: an analyst confirms vehicle1 is in the scene.
  SelectionCondition confirmed =
      SelectionCondition::ObjectEquals(objects_path, v1);
  ProbabilisticInstance updated = Unwrap(Select(inst, confirmed));
  std::printf("\nafter confirming vehicle1:\n");
  std::printf("P(bridge in scene)   = %.3f\n",
              Unwrap(PointQuery(updated, objects_path, bridge)));
  std::printf("P(vehicle2 in scene) = %.3f\n",
              Unwrap(PointQuery(updated, objects_path, v2)));
  return 0;
}
