#!/usr/bin/env python3
"""Validates an observability export against its checked-in JSON schema.

Usage: validate_obs_json.py SCHEMA.json FILE.json [FILE.json ...]

Stdlib-only (CI containers have no jsonschema package): implements the
subset of JSON Schema draft-07 the schemas in bench/schema/ actually use
— type, required, properties, additionalProperties, items, enum,
minimum. Unknown keywords are rejected loudly so a schema edit cannot
silently disable validation.

Exits 0 when every file validates, 1 with one line per violation
otherwise.
"""

import json
import sys

HANDLED = {
    "$schema", "title", "description",
    "type", "required", "properties", "additionalProperties", "items",
    "enum", "minimum",
}

TYPE_CHECKS = {
    "object": lambda v: isinstance(v, dict),
    "array": lambda v: isinstance(v, list),
    "string": lambda v: isinstance(v, str),
    # bool is an int subclass in Python; JSON booleans are not integers.
    "integer": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "number": lambda v: isinstance(v, (int, float)) and not isinstance(v, bool),
    "boolean": lambda v: isinstance(v, bool),
    "null": lambda v: v is None,
}


def validate(value, schema, path, errors):
    unknown = set(schema) - HANDLED
    if unknown:
        errors.append(f"{path}: schema uses unsupported keywords {sorted(unknown)}")
        return

    expected = schema.get("type")
    if expected is not None and not TYPE_CHECKS[expected](value):
        errors.append(f"{path}: expected {expected}, got {type(value).__name__}")
        return

    if "enum" in schema and value not in schema["enum"]:
        errors.append(f"{path}: {value!r} not in {schema['enum']}")
    if "minimum" in schema and isinstance(value, (int, float)) \
            and not isinstance(value, bool) and value < schema["minimum"]:
        errors.append(f"{path}: {value} < minimum {schema['minimum']}")

    if isinstance(value, dict):
        for key in schema.get("required", []):
            if key not in value:
                errors.append(f"{path}: missing required key '{key}'")
        props = schema.get("properties", {})
        extra = schema.get("additionalProperties")
        for key, item in value.items():
            if key in props:
                validate(item, props[key], f"{path}.{key}", errors)
            elif isinstance(extra, dict):
                validate(item, extra, f"{path}.{key}", errors)
            elif extra is False:
                errors.append(f"{path}: unexpected key '{key}'")

    if isinstance(value, list) and "items" in schema:
        for i, item in enumerate(value):
            validate(item, schema["items"], f"{path}[{i}]", errors)


def main(argv):
    if len(argv) < 3:
        print(__doc__.strip(), file=sys.stderr)
        return 1
    with open(argv[1]) as f:
        schema = json.load(f)
    failed = False
    for name in argv[2:]:
        try:
            with open(name) as f:
                doc = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            print(f"FAIL {name}: {e}")
            failed = True
            continue
        errors = []
        validate(doc, schema, "$", errors)
        if errors:
            failed = True
            print(f"FAIL {name}:")
            for err in errors:
                print(f"  {err}")
        else:
            print(f"ok   {name}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
