#!/usr/bin/env python3
"""Aggregate gcov line coverage into a per-directory markdown report.

Stdlib-only (no gcovr/lcov in the CI image): walks a --coverage build
tree for .gcda counter files, asks plain `gcov --json-format --stdout`
for per-line execution counts, merges counts across translation units
(a header's line is covered if ANY includer executed it), and prints a
markdown table of line coverage per top-level source directory plus a
per-file breakdown for the directories named with --detail.

Usage:
  tools/coverage_report.py BUILD_DIR [--repo-root DIR] [--gcov BIN]
      [--detail src/query] [--fail-under PCT --scope src/query]

--fail-under exits non-zero when the --scope directory's line coverage
falls below PCT — the CI baseline gate for the query engine.
"""

import argparse
import collections
import json
import os
import subprocess
import sys


def find_gcda(build_dir):
    for root, _dirs, files in os.walk(build_dir):
        for name in files:
            if name.endswith(".gcda"):
                yield os.path.join(root, name)


def gcov_records(gcda, gcov_bin):
    """Yields gcov JSON file records ({file, lines}) for one .gcda."""
    proc = subprocess.run(
        [gcov_bin, "--json-format", "--stdout", gcda],
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        check=False,
    )
    if proc.returncode != 0 or not proc.stdout:
        return
    # One JSON document per line of output (gcov emits one per gcda).
    for line in proc.stdout.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            doc = json.loads(line)
        except json.JSONDecodeError:
            continue
        yield from doc.get("files", [])


def normalize(path, cwd, repo_root):
    """Repo-relative source path, or None for out-of-tree files."""
    if not os.path.isabs(path):
        path = os.path.join(cwd, path)
    path = os.path.realpath(path)
    root = os.path.realpath(repo_root) + os.sep
    if not path.startswith(root):
        return None
    rel = path[len(root):]
    if rel.startswith("build"):  # generated/third-party inside build dirs
        return None
    return rel


def collect(build_dir, repo_root, gcov_bin):
    """{source: {line: max_count}} merged across every translation unit."""
    hits = collections.defaultdict(dict)
    for gcda in find_gcda(build_dir):
        cwd = os.path.dirname(gcda)
        for record in gcov_records(gcda, gcov_bin):
            rel = normalize(record.get("file", ""), cwd, repo_root)
            if rel is None:
                continue
            per_file = hits[rel]
            for entry in record.get("lines", []):
                line = entry.get("line_number")
                count = entry.get("count", 0)
                if line is None:
                    continue
                per_file[line] = max(per_file.get(line, 0), count)
    return hits


def group_key(rel_path):
    """src/query/engine.cc -> src/query; root-level files -> '.'."""
    return os.path.dirname(rel_path) or "."


def pct(covered, total):
    return 100.0 * covered / total if total else 0.0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("build_dir")
    parser.add_argument("--repo-root", default=os.getcwd())
    parser.add_argument("--gcov", default="gcov")
    parser.add_argument("--detail", action="append", default=[],
                        help="directory to expand per-file (repeatable)")
    parser.add_argument("--fail-under", type=float, default=None,
                        help="minimum line coverage %% for --scope")
    parser.add_argument("--scope", default="src/query",
                        help="directory gated by --fail-under")
    args = parser.parse_args()

    hits = collect(args.build_dir, args.repo_root, args.gcov)
    if not hits:
        print("coverage_report: no .gcda data found under "
              f"{args.build_dir} (build with -DPXML_COVERAGE=ON and run "
              "the tests first)", file=sys.stderr)
        return 2

    per_file = {
        rel: (sum(1 for c in lines.values() if c > 0), len(lines))
        for rel, lines in hits.items()
    }
    per_dir = collections.defaultdict(lambda: [0, 0])
    for rel, (covered, total) in per_file.items():
        acc = per_dir[group_key(rel)]
        acc[0] += covered
        acc[1] += total

    print("## Line coverage\n")
    print("| directory | lines | covered | % |")
    print("|---|---:|---:|---:|")
    grand_covered = grand_total = 0
    for directory in sorted(per_dir):
        covered, total = per_dir[directory]
        grand_covered += covered
        grand_total += total
        print(f"| {directory} | {total} | {covered} | "
              f"{pct(covered, total):.1f} |")
    print(f"| **total** | {grand_total} | {grand_covered} | "
          f"**{pct(grand_covered, grand_total):.1f}** |")

    for directory in args.detail:
        print(f"\n### {directory}\n")
        print("| file | lines | covered | % |")
        print("|---|---:|---:|---:|")
        for rel in sorted(per_file):
            if group_key(rel) != directory and not rel.startswith(
                    directory + os.sep):
                continue
            covered, total = per_file[rel]
            print(f"| {rel} | {total} | {covered} | "
                  f"{pct(covered, total):.1f} |")

    if args.fail_under is not None:
        covered, total = per_dir.get(args.scope, (0, 0))
        scope_pct = pct(covered, total)
        print(f"\ncoverage gate: {args.scope} at {scope_pct:.1f}% "
              f"(floor {args.fail_under:.1f}%)", file=sys.stderr)
        if scope_pct < args.fail_under:
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
